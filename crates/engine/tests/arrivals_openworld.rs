//! Open-world service mode end to end: streaming arrivals through the
//! admission gate, under both admission policies, composed with faults,
//! checked mode, and every entry point — with determinism proptested
//! over random plans (Poisson, burst, and trace classes all covered).

use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, FaultEvent, FaultInjection, FaultKind, FaultPlan,
    RunResult, SimConfig, SimWorkspace, Simulation, TaskClass,
};
use bc_platform::examples::fig1_tree;
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use bc_simcore::VecSink;
use proptest::prelude::*;

fn small_tree(seed: u64) -> Tree {
    RandomTreeConfig {
        min_nodes: 4,
        max_nodes: 10,
        comm_min: 1,
        comm_max: 8,
        compute_scale: 30,
    }
    .generate(seed)
}

/// A three-class plan covering every arrival process: unit Poisson
/// background, heavy periodic bursts, and a replayed trace.
fn mixed_plan(seed: u64, queue_cap: u64, policy: AdmissionPolicy) -> ArrivalPlan {
    ArrivalPlan {
        seed,
        classes: vec![
            TaskClass {
                name: "background".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson {
                    mean_gap: 4,
                    count: 30,
                },
            },
            TaskClass {
                name: "batchjob".into(),
                work_units: 3,
                process: ArrivalProcess::Burst {
                    phase: 15,
                    period: 40,
                    size: 2,
                    bursts: 3,
                },
            },
            TaskClass {
                name: "replay".into(),
                work_units: 2,
                process: ArrivalProcess::Trace {
                    times: vec![5, 5, 62, 130],
                },
            },
        ],
        queue_cap,
        policy,
    }
}

/// Steps to completion keeping the terminal oracle in the loop.
fn finish(mut sim: Simulation) -> RunResult {
    while sim.step() {}
    sim.verify_terminal().expect("terminal oracle");
    sim.run()
}

/// Under `Defer`, every submitted unit is eventually admitted and
/// served: backpressure delays work, never loses it. Checked mode
/// sweeps the open-world conservation ledger after every event.
#[test]
fn defer_policy_serves_every_submitted_unit() {
    let plan = mixed_plan(11, 6, AdmissionPolicy::Defer);
    let total = plan.total_units();
    let cfg = SimConfig::interruptible(3, 1)
        .with_arrivals(plan)
        .with_checked(true);
    let r = Simulation::new(fig1_tree(), cfg).run();
    assert_eq!(r.tasks_completed(), total);
    let ar = &r.arrivals;
    assert_eq!(ar.submitted, total);
    assert_eq!(ar.admitted, total);
    assert_eq!(ar.rejected, 0);
    assert_eq!(ar.admit_times.len() as u64, ar.admitted);
    assert!(
        ar.admit_times.windows(2).all(|w| w[0] <= w[1]),
        "admission order is time order"
    );
    // Fault-free: every admitted unit dispatches exactly once.
    assert_eq!(ar.dispatch_times.len() as u64, ar.admitted);
}

/// Under `Drop`, overflow arrivals are shed and the ledger balances
/// exactly: submitted = admitted + rejected, and the run ends when the
/// admitted work is done.
#[test]
fn drop_policy_sheds_load_exactly() {
    // Bursts of 6 units into a queue of 4 guarantee rejections.
    let plan = ArrivalPlan {
        seed: 3,
        classes: vec![TaskClass {
            name: "burst".into(),
            work_units: 3,
            process: ArrivalProcess::Burst {
                phase: 2,
                period: 9,
                size: 2,
                bursts: 8,
            },
        }],
        queue_cap: 4,
        policy: AdmissionPolicy::Drop,
    };
    let total = plan.total_units();
    let cfg = SimConfig::interruptible(2, 1)
        .with_arrivals(plan)
        .with_checked(true);
    let r = Simulation::new(small_tree(7), cfg).run();
    let ar = &r.arrivals;
    assert!(ar.rejected > 0, "the burst must overflow the cap");
    assert_eq!(ar.submitted, total);
    assert_eq!(ar.admitted + ar.rejected, ar.submitted);
    assert_eq!(r.tasks_completed() as u64 + ar.rejected, total);
    assert_eq!(r.tasks_completed() as u64, ar.admitted);
    assert_eq!(ar.deferrals, 0, "Drop never defers");
}

/// Under `Defer`, the same overload engages backpressure instead:
/// deferrals are counted, the peak backlog is tracked, and the queue
/// fully drains by the end.
#[test]
fn defer_policy_backpressure_engages_and_drains() {
    let plan = ArrivalPlan {
        seed: 3,
        classes: vec![TaskClass {
            name: "burst".into(),
            work_units: 3,
            process: ArrivalProcess::Burst {
                phase: 2,
                period: 9,
                size: 2,
                bursts: 8,
            },
        }],
        queue_cap: 4,
        policy: AdmissionPolicy::Defer,
    };
    let total = plan.total_units();
    let cfg = SimConfig::interruptible(2, 1)
        .with_arrivals(plan)
        .with_checked(true);
    let r = Simulation::new(small_tree(7), cfg).run();
    let ar = &r.arrivals;
    assert!(ar.deferrals > 0, "the burst must hit the cap");
    assert!(ar.peak_deferred >= 3, "a whole class arrival waits");
    assert_eq!(ar.rejected, 0);
    assert_eq!(ar.admitted, total, "deferred work is admitted eventually");
    assert_eq!(r.tasks_completed() as u64, total);
}

/// Per-class accounting: admitted and completed unit counts split by
/// class, and in a fault-free full-service run both match the plan.
#[test]
fn per_class_accounting_is_exact() {
    let plan = mixed_plan(29, 8, AdmissionPolicy::Defer);
    let per_class: Vec<u64> = plan
        .classes
        .iter()
        .map(|c| c.work_units * c.arrival_count())
        .collect();
    let cfg = SimConfig::interruptible(3, 1)
        .with_arrivals(plan)
        .with_checked(true);
    let r = Simulation::new(fig1_tree(), cfg).run();
    let ar = &r.arrivals;
    assert_eq!(ar.admitted_per_class, per_class);
    assert_eq!(ar.completed_per_class, per_class);
    assert_eq!(
        ar.completed_per_class.iter().sum::<u64>(),
        r.tasks_completed() as u64
    );
}

/// Open-world mode composes with the fault layer: a link outage and a
/// crash mid-stream still end with every admitted unit served (recovery
/// reissues), and the checker's admission-bound check stands down for
/// the reissue path without disabling conservation.
#[test]
fn arrivals_compose_with_fault_recovery() {
    let tree = small_tree(13);
    let plan = mixed_plan(5, 10, AdmissionPolicy::Defer);
    let total = plan.total_units();
    let faults = FaultPlan {
        seed: 99,
        faults: vec![
            FaultEvent {
                at: 25,
                node: NodeId(1),
                kind: FaultKind::LinkOutage { duration: 30 },
            },
            FaultEvent {
                at: 60,
                node: NodeId(2),
                kind: FaultKind::Crash,
            },
        ],
        recovery: Default::default(),
    };
    let cfg = SimConfig::interruptible(2, 1)
        .with_arrivals(plan)
        .with_fault_plan(faults)
        .with_checked(true);
    let r = Simulation::new(tree, cfg).run();
    assert_eq!(r.tasks_completed() as u64, total);
    assert!(r.faults.crashes >= 1, "the crash must strike");
    // Reissued units dispatch again: the dispatch log can exceed the
    // admission log, never trail it.
    assert!(r.arrivals.dispatch_times.len() >= r.arrivals.admit_times.len());
}

/// The checker's open-world ledger has teeth: a deliberately injected
/// admission-gate leak (counted submitted, neither queued nor rejected)
/// trips `arrival-conservation` at the next sweep.
#[test]
#[should_panic(expected = "arrival-conservation")]
fn leaked_queued_task_is_caught() {
    // Guaranteed deferrals: bursts of 6 units into a cap of 4, Defer.
    let plan = ArrivalPlan {
        seed: 3,
        classes: vec![TaskClass {
            name: "burst".into(),
            work_units: 3,
            process: ArrivalProcess::Burst {
                phase: 2,
                period: 9,
                size: 2,
                bursts: 8,
            },
        }],
        queue_cap: 4,
        policy: AdmissionPolicy::Defer,
    };
    let cfg = SimConfig::interruptible(2, 1)
        .with_arrivals(plan)
        .with_checked(true)
        .with_fault(FaultInjection::LeakQueuedTask { every: 2 });
    let _ = Simulation::new(small_tree(7), cfg).run();
}

/// The same leak surfaces as `Err` through the manual entry point (the
/// channel the fuzzer's shrinker uses).
#[test]
fn leaked_queued_task_surfaces_as_violation_when_unchecked() {
    let plan = ArrivalPlan {
        seed: 3,
        classes: vec![TaskClass {
            name: "burst".into(),
            work_units: 2,
            process: ArrivalProcess::Burst {
                phase: 2,
                period: 7,
                size: 3,
                bursts: 10,
            },
        }],
        queue_cap: 3,
        policy: AdmissionPolicy::Defer,
    };
    let cfg = SimConfig::interruptible(2, 1)
        .with_arrivals(plan)
        .with_checked(false)
        .with_fault(FaultInjection::LeakQueuedTask { every: 1 });
    let mut sim = Simulation::with_workspace(small_tree(7), cfg, SimWorkspace::new());
    sim.start();
    let mut caught = None;
    while caught.is_none() && sim.step() {
        caught = sim.verify_invariants().err();
    }
    let v = caught.expect("the leak must be visible mid-run");
    assert_eq!(v.check, "arrival-conservation");
}

/// Checking is read-only in open-world mode too: a checked and an
/// unchecked run of the same streamed workload are identical.
#[test]
fn checked_mode_is_transparent_under_arrivals() {
    for policy in [AdmissionPolicy::Defer, AdmissionPolicy::Drop] {
        let plan = mixed_plan(17, 5, policy);
        let tree = small_tree(21);
        let cfg = SimConfig::interruptible(2, 1).with_arrivals(plan);
        let checked = Simulation::new(tree.clone(), cfg.clone().with_checked(true)).run();
        let unchecked = Simulation::new(tree, cfg.with_checked(false)).run();
        assert_eq!(checked, unchecked);
    }
}

// ---------------------------------------------------------------------------
// Determinism proptests (batch vs streaming entry points, snapshots)
// ---------------------------------------------------------------------------

/// Strategy: an arbitrary valid plan always containing a Poisson, a
/// burst, and a trace class, random cap and policy.
fn arb_plan() -> impl Strategy<Value = ArrivalPlan> {
    (
        any::<u64>(),
        (1u64..6, 1u64..20),                    // poisson: mean_gap, count
        (0u64..25, 1u64..15, 1u64..3, 1u64..4), // burst: phase, period, size, bursts
        prop::collection::vec(0u64..120, 1..5), // trace times (unsorted)
        (1u64..3, 4u64..10),                    // burst class width, queue cap
        any::<bool>(),                          // policy coin
    )
        .prop_map(
            |(
                seed,
                (mean_gap, count),
                (phase, period, size, bursts),
                times,
                (width, cap),
                defer,
            )| {
                ArrivalPlan {
                    seed,
                    classes: vec![
                        TaskClass {
                            name: "p".into(),
                            work_units: 1,
                            process: ArrivalProcess::Poisson { mean_gap, count },
                        },
                        TaskClass {
                            name: "b".into(),
                            work_units: width,
                            process: ArrivalProcess::Burst {
                                phase,
                                period,
                                size,
                                bursts,
                            },
                        },
                        TaskClass {
                            name: "t".into(),
                            work_units: 1,
                            process: ArrivalProcess::Trace { times },
                        },
                    ],
                    queue_cap: cap,
                    policy: if defer {
                        AdmissionPolicy::Defer
                    } else {
                        AdmissionPolicy::Drop
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One plan, every entry point, bit-identical everywhere: the batch
    /// `run()`, the manual step loop, the traced run (twice — the event
    /// stream itself must be reproducible), and a run resumed from a
    /// mid-stream snapshot all yield the same `RunResult`.
    #[test]
    fn arrival_runs_are_deterministic_across_entry_points(
        plan in arb_plan(),
        tree_seed in 0u64..1_000_000,
        k in 0u64..300,
    ) {
        let tree = small_tree(tree_seed);
        let cfg = SimConfig::interruptible(2, 1)
            .with_arrivals(plan)
            .with_checked(false);

        // Batch entry point, twice: same bits.
        let reference = Simulation::new(tree.clone(), cfg.clone()).run();
        let again = Simulation::new(tree.clone(), cfg.clone()).run();
        prop_assert_eq!(&again, &reference);

        // Streaming entry point: manual step loop + terminal oracle.
        let stepped = finish(Simulation::new(tree.clone(), cfg.clone()));
        prop_assert_eq!(&stepped, &reference);

        // Traced entry point, twice: identical result AND identical
        // event stream.
        let sim = Simulation::traced(tree.clone(), cfg.clone(), SimWorkspace::new(), VecSink::new());
        let (r1, _, s1) = sim.run_traced();
        let sim = Simulation::traced(tree.clone(), cfg.clone(), SimWorkspace::new(), VecSink::new());
        let (r2, _, s2) = sim.run_traced();
        prop_assert_eq!(&r1, &reference);
        prop_assert_eq!(&r2, &reference);
        prop_assert_eq!(s1.records, s2.records, "trace stream must be reproducible");

        // Snapshot mid-stream (possibly with pending arrivals and a
        // non-empty deferred queue), resume, finish: same bits.
        let mut sim = Simulation::new(tree, cfg);
        let mut stepped_events = 0u64;
        while stepped_events < k && sim.step() {
            stepped_events += 1;
        }
        let snap = sim.snapshot();
        prop_assert_eq!(&finish(sim), &reference);
        prop_assert_eq!(&finish(snap.resume()), &reference);
    }

    /// The schedule the engine consumed is exactly the plan's
    /// pregenerated one: total submissions and the per-class split match
    /// the static schedule, independent of tree and policy.
    #[test]
    fn submission_ledger_matches_static_schedule(
        plan in arb_plan(),
        tree_seed in 0u64..1_000_000,
    ) {
        let schedule_units: u64 = plan.schedule().iter().map(|a| a.units).sum();
        let total = plan.total_units();
        prop_assert_eq!(schedule_units, total);
        let policy = plan.policy;
        let cfg = SimConfig::interruptible(2, 1)
            .with_arrivals(plan)
            .with_checked(true);
        let r = Simulation::new(small_tree(tree_seed), cfg).run();
        let ar = &r.arrivals;
        prop_assert_eq!(ar.submitted, total);
        prop_assert_eq!(ar.admitted + ar.rejected, total);
        if policy == AdmissionPolicy::Defer {
            prop_assert_eq!(ar.rejected, 0);
        }
        prop_assert_eq!({ r.tasks_completed() }, ar.admitted);
        prop_assert_eq!(
            ar.admitted_per_class.iter().sum::<u64>(),
            ar.admitted
        );
        prop_assert_eq!(
            ar.completed_per_class.iter().sum::<u64>(),
            { r.tasks_completed() }
        );
    }
}
