//! Exact-timing regression tests: hand-verifiable event sequences whose
//! completion times are asserted to the timestep. These freeze the
//! protocol semantics — any change to request flow, preemption, or
//! buffer accounting that shifts a single event breaks them.

use bc_engine::{SimConfig, Simulation};
use bc_platform::{NodeId, Tree};

#[test]
fn two_node_pipeline_exact_schedule() {
    // Root w=3, child c=2 w=4, IC FB=1, self-first.
    //
    // t=0  child requests; root starts computing A (done t=3) and starts
    //      transmitting B to the child (done t=2).
    // t=2  B arrives; child computes B (2→6) and re-requests; root
    //      transmits C (2→4), which waits in the child's buffer.
    // t=3  root completes A, takes D (3→6).
    // t=6  root completes D, takes E (6→9); child completes B, starts C
    //      (6→10) and re-requests; root transmits F (6→8).
    // …root: A,D,E,G at 3,6,9,12; child: B,C,F,H at 6,10,14,18.
    let mut t = Tree::new(3);
    t.add_child(NodeId::ROOT, 2, 4);
    let r = Simulation::new(t, SimConfig::interruptible(1, 8)).run();
    assert_eq!(r.completion_times, vec![3, 6, 6, 9, 10, 12, 14, 18]);
    assert_eq!(r.tasks_per_node, vec![4, 4]);
}

#[test]
fn fig2a_like_preemption_exact_start() {
    // Root (huge w — its own task completes far beyond the horizon),
    // B: c=1 w=2, C: c=5 w=8, IC FB=1. The transfer to C is preempted
    // every time B frees its buffer; B completes at t = 3, 5, 7, 9, …
    let mut t = Tree::new(1_000_000);
    t.add_child(NodeId::ROOT, 1, 2); // B
    t.add_child(NodeId::ROOT, 5, 8); // C
    let r = Simulation::new(t, SimConfig::interruptible(1, 12)).run();
    assert_eq!(&r.completion_times[..4], &[3, 5, 7, 9]);
    // B's completions stay on the every-2-steps cadence except where C's
    // occasional arrival interleaves.
    let diffs: Vec<u64> = r.completion_times[..8]
        .windows(2)
        .map(|w| w[1] - w[0])
        .collect();
    assert!(
        diffs.iter().filter(|&&d| d == 2).count() >= 5,
        "B cadence broken: {diffs:?}"
    );
}

#[test]
fn non_interruptible_head_of_line_blocking_exact() {
    // Same platform, non-IC FB=1: once the 5-step transfer to C starts,
    // B starves behind it. First completions show the stall.
    //
    // t=0  B and C request; link sends to B (0→1).
    // t=1  B computes (1→3) and re-requests; B still outranks C, so the
    //      link immediately refills B's buffer (1→2).
    // t=2  B is full and silent; C's request is finally served: the
    //      5-step transfer to C starts (2→7) and CANNOT be interrupted.
    // t=3  B completes, starts its buffered task (3→5), re-requests —
    //      but the link is pinned until t=7. B idles from t=5.
    // t=7  C computes (7→15); link refills B (7→8); B resumes 8→10.
    let mut t = Tree::new(1_000_000);
    t.add_child(NodeId::ROOT, 1, 2); // B
    t.add_child(NodeId::ROOT, 5, 8); // C
    let r = Simulation::new(t, SimConfig::non_interruptible_fixed(1, 6)).run();
    assert_eq!(&r.completion_times[..5], &[3, 5, 10, 12, 15]);
    // The stall: B's cadence jumps from 2 steps to 5 across the transfer
    // to C — exactly the head-of-line blocking Fig 2(a) illustrates.
    assert_eq!(r.completion_times[2] - r.completion_times[1], 5);
}

#[test]
fn zero_length_gap_preemption_is_clean() {
    // Craft a preemption arriving exactly when the victim finishes:
    // child F (c=2) and child S (c=4). S's transfer completes at the same
    // instant F's request lands; the engine must deliver S's task rather
    // than shelving a zero-remaining transfer.
    let mut t = Tree::new(1_000_000);
    t.add_child(NodeId::ROOT, 2, 4); // F
    t.add_child(NodeId::ROOT, 4, 1_000_000); // S: computes once, slowly
    let r = Simulation::new(t, SimConfig::interruptible(1, 10)).run();
    // No panic (the debug assert in finish_slot guards this path) and F
    // does the bulk of the work on the every-4-steps cadence.
    assert_eq!(r.tasks_per_node[1], 7);
    assert_eq!(&r.completion_times[..4], &[6, 10, 14, 18]);
}

#[test]
fn single_child_chain_exact_depth_latency() {
    // Chain root→a→b, all c=1, all w=5, IC FB=1, self-first: a COMPUTES
    // its first arrival (t=1, done 6) before forwarding; b's first task
    // arrives via a's second arrival (forwarded 2→3, computed 3→8).
    // Steady state: one completion somewhere every ~5/3 steps.
    let mut t = Tree::new(5);
    let a = t.add_child(NodeId::ROOT, 1, 5);
    t.add_child(a, 1, 5);
    let r = Simulation::new(t, SimConfig::interruptible(1, 9)).run();
    assert_eq!(r.completion_times, vec![5, 6, 8, 10, 11, 13, 15, 16, 18]);
    assert_eq!(r.tasks_per_node, vec![3, 3, 3]);
}

#[test]
fn self_last_changes_first_allocation() {
    // With self_first=false the root's first buffered task goes to the
    // requesting child, delaying the root's own first completion.
    let mut t = Tree::new(3);
    t.add_child(NodeId::ROOT, 2, 4);
    let mut cfg = SimConfig::interruptible(1, 6);
    cfg.self_first = false;
    let r = Simulation::new(t, cfg).run();
    // Child's first task: transfer 0→2, compute 2→6.
    // Root also computes from t=0 (its processor is free and a task is
    // available after the send starts).
    assert_eq!(r.completion_times[0], 3);
    assert_eq!(r.tasks_per_node.iter().sum::<u64>(), 6);
}
