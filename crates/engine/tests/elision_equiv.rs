//! Saturated-regime event elision must be invisible: a run with elision
//! enabled produces *exactly* the same `RunResult` (and `FaultStats`,
//! and terminal-checker verdict) as the same run with elision off, over
//! random platforms, every protocol variant, and fault-plan legs. The
//! auto-disable gates (tracing, checked mode, faults, growable buffers)
//! are regression-tested separately: under any of them the engine must
//! elide nothing at all.

use bc_core::ObserverKind;
use bc_engine::{
    ChangeKind, FaultEvent, FaultKind, FaultPlan, PlannedChange, RunResult, SelectorKind,
    SimConfig, Simulation,
};
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use bc_simcore::VecSink;
use proptest::prelude::*;

/// The protocol variants the equivalence must hold for. The growable
/// entries exercise the auto-disable path (elision gates itself off for
/// non-fixed buffers); the fixed entries exercise real chains.
fn variants(tasks: u64) -> Vec<(&'static str, SimConfig)> {
    let mut v = vec![
        ("ic-fb1", SimConfig::interruptible(1, tasks)),
        ("ic-fb2", SimConfig::interruptible(2, tasks)),
        ("ic-fb3", SimConfig::interruptible(3, tasks)),
        ("nonic-fb1", SimConfig::non_interruptible_fixed(1, tasks)),
        ("nonic-fb2", SimConfig::non_interruptible_fixed(2, tasks)),
        ("nonic-ib1", SimConfig::non_interruptible(1, tasks)),
    ];
    let mut rr = SimConfig::interruptible(3, tasks);
    rr.selector = SelectorKind::RoundRobin;
    v.push(("ic-fb3-rr", rr));
    let mut cc = SimConfig::interruptible(2, tasks);
    cc.selector = SelectorKind::ComputeCentric;
    v.push(("ic-fb2-cc", cc));
    let mut lf = SimConfig::non_interruptible_fixed(2, tasks);
    lf.self_first = false;
    v.push(("nonic-fb2-linkfirst", lf));
    let mut ob = SimConfig::interruptible(3, tasks);
    ob.observer = ObserverKind::LastSample { initial: 5 };
    v.push(("ic-fb3-lastsample", ob));
    v
}

/// Steps a sim to completion, checks the terminal oracle, and returns
/// `(result, events_elided)`.
fn run_collect(tree: Tree, cfg: SimConfig) -> (RunResult, u64) {
    let mut sim = Simulation::new(tree, cfg);
    while sim.step() {}
    sim.verify_terminal().expect("terminal oracle");
    let elided = sim.events_elided();
    (sim.run(), elided)
}

/// A fault plan whose legs hit several recovery paths; elision must
/// gate itself off (and the differential still hold trivially).
fn fault_plan(nodes: usize) -> FaultPlan {
    let mid = ((nodes / 2).max(1)) as u32;
    FaultPlan {
        seed: 11,
        faults: vec![
            FaultEvent {
                at: 40,
                node: bc_platform::NodeId(mid),
                kind: FaultKind::RequestLoss { batches: 1 },
            },
            FaultEvent {
                at: 90,
                node: bc_platform::NodeId(((nodes - 1).max(1)) as u32),
                kind: FaultKind::LinkOutage { duration: 25 },
            },
        ],
        recovery: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over random platforms (spanning dense and sparse event regimes)
    /// and every protocol variant, elided and unelided runs are equal in
    /// every field of `RunResult` (which embeds `FaultStats`), and both
    /// pass the terminal checker.
    #[test]
    fn elision_is_invisible(
        seed in 0u64..1_000_000,
        scale_ix in 0usize..3,
        faults_coin in 0u8..2,
    ) {
        let scale = [10u64, 60, 400][scale_ix];
        let with_faults = faults_coin == 1;
        let gen = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 18,
            comm_min: 1,
            comm_max: 10,
            compute_scale: scale,
        };
        let tree = gen.generate(seed);
        for (name, cfg) in variants(60) {
            let mut cfg = cfg.with_checked(false);
            if with_faults {
                cfg = cfg.with_fault_plan(fault_plan(tree.len()));
            }
            let (on, elided) = run_collect(tree.clone(), cfg.clone().with_elision(true));
            let (off, off_elided) = run_collect(tree.clone(), cfg.with_elision(false));
            prop_assert_eq!(off_elided, 0, "off must elide nothing ({})", name);
            if with_faults {
                prop_assert_eq!(elided, 0, "fault plan must force elision off ({})", name);
            }
            prop_assert_eq!(&on, &off, "elision changed the result ({})", name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tombstone-heavy profile: interruptible single-buffer runs churn
    /// the agenda with preemption cancellations, and an early change
    /// script (a weight shift, then a subtree leave) cancels whole
    /// batches of scheduled events. Elision re-arms once the script is
    /// exhausted, over an agenda still littered with tombstones — the
    /// "next foreign event" chain bound must skip the purged entries
    /// rather than capping chains at a stale cancelled time. Equality
    /// with the unelided run proves it.
    #[test]
    fn elision_skips_tombstones(
        seed in 0u64..1_000_000,
        comm_after in 1u64..10,
        leave_after in 10u64..30,
    ) {
        let gen = RandomTreeConfig {
            min_nodes: 3,
            max_nodes: 12,
            comm_min: 1,
            comm_max: 8,
            compute_scale: 80,
        };
        let tree = gen.generate(seed);
        let mid = NodeId(((tree.len() / 2).max(1)) as u32);
        let profile = [
            ("ic-fb1", SimConfig::interruptible(1, 80)),
            ("ic-fb2", SimConfig::interruptible(2, 80)),
            ("nonic-fb1", SimConfig::non_interruptible_fixed(1, 80)),
        ];
        for (name, cfg) in profile {
            let mut cfg = cfg.with_checked(false);
            cfg.changes = vec![
                PlannedChange {
                    after_tasks: comm_after,
                    node: mid,
                    kind: ChangeKind::CommTime(12),
                },
                PlannedChange {
                    after_tasks: leave_after,
                    node: mid,
                    kind: ChangeKind::Leave,
                },
            ];
            let (on, _) = run_collect(tree.clone(), cfg.clone().with_elision(true));
            let (off, off_elided) = run_collect(tree.clone(), cfg.with_elision(false));
            prop_assert_eq!(off_elided, 0, "off must elide nothing ({})", name);
            prop_assert_eq!(&on, &off, "elision over tombstones changed the result ({})", name);
        }
    }
}

/// Deterministic tombstone companion: after an early leave cancels the
/// departing child's scheduled events, the repository computes the rest
/// alone — those tail chains must actually fire (elided > 0) over the
/// tombstoned agenda and still match the unelided run.
#[test]
fn chains_fire_over_tombstoned_agenda() {
    let mut tree = Tree::new(5);
    let kid = tree.add_child(NodeId::ROOT, 7, 9);
    let cfg = SimConfig::interruptible(2, 300)
        .with_checked(false)
        .with_change(PlannedChange {
            after_tasks: 10,
            node: kid,
            kind: ChangeKind::Leave,
        });
    let (on, elided) = run_collect(tree.clone(), cfg.clone().with_elision(true));
    let (off, _) = run_collect(tree, cfg.with_elision(false));
    assert_eq!(on, off);
    assert!(
        elided > 0,
        "the post-leave repository tail should chain despite agenda tombstones"
    );
}

/// On a platform sparse enough for chains (a lone repository computing
/// everything itself), elision must actually fire — the whole run is
/// one macro-event — and still match the unelided run.
#[test]
fn chains_fire_on_sparse_platforms() {
    let tree = Tree::new(7); // repository only, compute time 7
    let cfg = SimConfig::interruptible(3, 500).with_checked(false);
    let (on, elided) = run_collect(tree.clone(), cfg.clone().with_elision(true));
    let (off, _) = run_collect(tree, cfg.with_elision(false));
    assert_eq!(on, off);
    assert_eq!(elided, 499, "a lone repository is one 500-long chain");
    assert_eq!(on.events_processed, off.events_processed);
}

/// Leaf-side chains: a two-node chain whose leaf drains its buffers
/// during wind-down (the repository exhausted) must elide and match.
#[test]
fn leaf_chains_fire_and_match() {
    let mut tree = Tree::new(1_000_000); // root effectively never computes
    tree.add_child(bc_platform::NodeId::ROOT, 2, 9);
    let cfg = SimConfig::interruptible(3, 40).with_checked(false);
    let (on, elided) = run_collect(tree.clone(), cfg.clone().with_elision(true));
    let (off, _) = run_collect(tree, cfg.with_elision(false));
    assert_eq!(on, off);
    assert!(elided > 0, "leaf wind-down chains should elide");
}

/// A tracing sink forces elision off: the trace stream must be the
/// complete per-event one, so the engine may not skip any agenda pops.
#[test]
fn tracing_forces_elision_off() {
    let tree = Tree::new(7);
    let cfg = SimConfig::interruptible(3, 100)
        .with_checked(false)
        .with_elision(true);
    let mut sim = Simulation::traced(
        tree.clone(),
        cfg.clone(),
        bc_engine::SimWorkspace::new(),
        VecSink::new(),
    );
    while sim.step() {}
    assert_eq!(sim.events_elided(), 0, "tracing must disable elision");
    let (_res, _ws, sink) = sim.run_traced();
    // The trace matches the untraced-and-unelided event count: nothing
    // was collapsed away.
    let untraced = Simulation::new(tree, cfg.with_elision(false)).run();
    assert!(sink.records.len() as u64 >= untraced.events_processed);
}

/// Checked mode forces elision off (the checker sweeps between events
/// and would observe the skipped intermediate states).
#[test]
fn checked_mode_forces_elision_off() {
    let tree = Tree::new(7);
    let cfg = SimConfig::interruptible(3, 100)
        .with_checked(true)
        .with_elision(true);
    let mut sim = Simulation::new(tree, cfg);
    while sim.step() {}
    assert_eq!(sim.events_elided(), 0, "checked mode must disable elision");
}
