//! Snapshot, restore, and what-if forking of a running simulation.
//!
//! A [`SimSnapshot`] captures the *complete* state of a [`Simulation`]
//! at a quiescent point (between [`Simulation::step`]s): the platform
//! tree, the configuration, every workspace arena — the two-tier agenda
//! including tombstones, drained-bucket heads, slot generations and the
//! free-list order, so outstanding [`bc_simcore::EventHandle`]s stay
//! valid — and every progress cursor. A simulation rebuilt from a
//! snapshot continues **bit-identically**: same `RunResult`, same trace
//! suffix, same panics (the `snapshot_roundtrip` suite proptests this
//! across protocols, fault legs, and elision regimes).
//!
//! Three consumers:
//!
//! * **What-if forking** ([`SimSnapshot::fork`]): branch K divergent
//!   continuations off one mid-run state — degrade a link, inject a
//!   crash — and diff the outcomes through the existing trace folds
//!   (`whatif` binary).
//! * **Fuzzer suffix replay**: `fuzz_protocols` snapshots periodically
//!   and re-confirms failures from the last snapshot, exercising
//!   restore exactness adversarially.
//! * **Checker time travel**: checked mode keeps a periodic snapshot
//!   and, on an invariant violation, emits it plus the replayed trace
//!   suffix leading up to the violation (`BC_SNAPSHOT_DIR` or the
//!   system temp dir).
//!
//! Snapshots also serialize to a compact versioned binary format
//! ([`SimSnapshot::to_bytes`] / [`SimSnapshot::from_bytes`]): magic
//! `BCSS`, a format version byte, then LEB128 varints for integers.
//! The format is self-contained (tree and config travel with the
//! state) and re-encoding a decoded snapshot reproduces the input
//! bytes exactly.

use crate::arrivals::{AdmissionPolicy, ArrivalPlan, ArrivalProcess, TaskClass};
use crate::config::{
    ChangeKind, FaultEvent, FaultInjection, FaultKind, FaultPlan, PlannedChange, Protocol,
    RecoveryTuning, SelectorKind, SimConfig,
};
use crate::result::FaultStats;
use crate::sim::{
    ActiveTransfer, ColdNode, Event, FaultRt, HotNode, Sending, SimWorkspace, Simulation,
    SlotTransfer,
};
use bc_core::{
    BufferLedger, BufferPolicy, ChildSelector, GrowthGate, LatencyObserver, LedgerState,
    ObserverKind, ObserverState,
};
use bc_platform::{NodeId, Tree};
use bc_simcore::{
    AgendaSnapshot, EventHandle, NullSink, PackedEvent, SlotSnapshot, Time, TraceSink, VecSink,
};

/// Near-tier calendar size of the kernel agenda — bucket indices in a
/// serialized snapshot must stay below this (mirrors
/// `bc_simcore::agenda::NEAR_BUCKETS`).
const NEAR_BUCKETS: u32 = 1024;

// ---------------------------------------------------------------------------
// In-memory snapshot types
// ---------------------------------------------------------------------------

/// Verbatim capture of a [`SimWorkspace`]'s runtime containers. The
/// between-steps scratch (service queue, queued flags, candidate list)
/// is empty at any quiescent point and is not captured; restore
/// re-clears it.
#[derive(Clone)]
pub struct WorkspaceSnapshot {
    pub(crate) agenda: AgendaSnapshot<Event>,
    pub(crate) hot: Vec<HotNode>,
    pub(crate) cold: Vec<ColdNode>,
    pub(crate) sending: Vec<Option<Sending>>,
    pub(crate) active: Vec<Option<ActiveTransfer>>,
    pub(crate) faults: Vec<FaultRt>,
    pub(crate) parent_of: Vec<Option<usize>>,
    pub(crate) child_pos: Vec<usize>,
    pub(crate) kid_start: Vec<u32>,
    pub(crate) kid_node: Vec<u32>,
    pub(crate) kid_pending: Vec<u32>,
    pub(crate) kid_slot: Vec<Option<SlotTransfer>>,
    pub(crate) kid_comm: Vec<u64>,
    pub(crate) kid_compute: Vec<u64>,
    pub(crate) kid_missed: Vec<u8>,
    pub(crate) pending_sum: Vec<u32>,
    pub(crate) slots_used: Vec<u32>,
    pub(crate) kid_gone: Vec<bool>,
    pub(crate) completion_times: Vec<Time>,
    pub(crate) checkpoint_records: Vec<(u64, u32)>,
}

/// The progress cursors of a [`Simulation`] — everything that is not a
/// workspace container, the tree, or the configuration.
#[derive(Clone)]
pub(crate) struct CursorSnapshot {
    pub(crate) remaining: u64,
    pub(crate) completed: u64,
    pub(crate) next_checkpoint: u64,
    pub(crate) next_change: u64,
    pub(crate) events_processed: u64,
    pub(crate) preemptions: u64,
    pub(crate) transfers_started: u64,
    pub(crate) requests_sent: u64,
    pub(crate) started: bool,
    pub(crate) finished: bool,
    pub(crate) check_last_now: Time,
    pub(crate) events_since_sweep: u32,
    pub(crate) faulty_deliveries: u64,
    pub(crate) fault_active: bool,
    pub(crate) recovery: RecoveryTuning,
    pub(crate) fault_seed: u64,
    pub(crate) dead_threshold: u8,
    pub(crate) lost_pending: u64,
    pub(crate) fstats: FaultStats,
    pub(crate) elided: u64,
    pub(crate) finish_target: u64,
    pub(crate) arrivals: Option<ArrivalCursor>,
}

/// Open-world arrival runtime state at capture — everything except the
/// pregenerated schedule, which is a pure function of the configuration
/// and is regenerated on restore (bit-identically, by design).
#[derive(Clone)]
pub(crate) struct ArrivalCursor {
    pub(crate) cursor: u64,
    pub(crate) deferred: Vec<u32>,
    pub(crate) deferred_units: u64,
    pub(crate) submitted: u64,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) deferrals: u64,
    pub(crate) peak_deferred: u64,
    pub(crate) leak_tick: u64,
    pub(crate) admit_times: Vec<Time>,
    pub(crate) dispatch_times: Vec<Time>,
    pub(crate) admit_class: Vec<u32>,
    pub(crate) admitted_per_class: Vec<u64>,
}

/// Complete mid-run state of a [`Simulation`], captured by
/// [`Simulation::snapshot`]. Self-contained: the tree and configuration
/// travel with the runtime state, so a snapshot can be serialized,
/// shipped, and resumed elsewhere.
#[derive(Clone)]
pub struct SimSnapshot {
    pub(crate) tree: Tree,
    pub(crate) cfg: SimConfig,
    pub(crate) ws: WorkspaceSnapshot,
    pub(crate) cur: CursorSnapshot,
}

impl std::fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("nodes", &self.tree.len())
            .field("now", &self.ws.agenda.now)
            .field("events_processed", &self.cur.events_processed)
            .field("completed", &self.cur.completed)
            .field("finished", &self.cur.finished)
            .finish_non_exhaustive()
    }
}

impl SimSnapshot {
    /// Simulation time at capture.
    pub fn now(&self) -> Time {
        self.ws.agenda.now
    }

    /// Events processed up to capture.
    pub fn events_processed(&self) -> u64 {
        self.cur.events_processed
    }

    /// Tasks completed up to capture.
    pub fn completed(&self) -> u64 {
        self.cur.completed
    }

    /// The platform tree as of capture (scripted changes applied).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The run configuration.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Builds the unmodified continuation — shorthand for
    /// [`Simulation::from_snapshot`].
    pub fn resume(&self) -> Simulation {
        Simulation::from_snapshot(self)
    }

    /// Builds a what-if branch: clones this snapshot, lets `tweak`
    /// perturb it through a [`WhatIf`], and returns the divergent
    /// continuation. The original snapshot is untouched, so K branches
    /// can be forked off the same capture.
    pub fn fork(&self, tweak: impl FnOnce(&mut WhatIf)) -> Simulation {
        self.fork_traced(SimWorkspace::new(), NullSink, tweak)
    }

    /// [`SimSnapshot::fork`] with a caller-supplied workspace and trace
    /// sink, for branches whose divergence is diffed through trace folds.
    pub fn fork_traced<S: TraceSink>(
        &self,
        ws: SimWorkspace,
        sink: S,
        tweak: impl FnOnce(&mut WhatIf),
    ) -> Simulation<S> {
        let mut what_if = WhatIf {
            snap: self.clone(),
            touched: Vec::new(),
            injected: Vec::new(),
        };
        tweak(&mut what_if);
        let WhatIf {
            snap,
            touched,
            injected,
        } = what_if;
        let mut sim = Simulation::from_snapshot_traced(&snap, ws, sink);
        sim.apply_fork_edits(&touched, &injected);
        sim
    }
}

/// Mutator handed to [`SimSnapshot::fork`] closures: the supported
/// divergence axes of a what-if branch. Weight changes follow the exact
/// semantics of a scripted [`ChangeKind`] applied at the fork instant
/// (in-flight work keeps its old duration; the neighborhood is
/// re-examined under the new weights); injected faults join the fault
/// plan and strike at their scheduled time (clamped to the fork
/// instant if already past).
pub struct WhatIf {
    snap: SimSnapshot,
    touched: Vec<usize>,
    injected: Vec<FaultEvent>,
}

impl WhatIf {
    /// Simulation time of the fork point.
    pub fn now(&self) -> Time {
        self.snap.now()
    }

    /// The branch's platform tree (pre-tweak weights until set below).
    pub fn tree(&self) -> &Tree {
        &self.snap.tree
    }

    /// Sets the edge weight `c_node` from the fork instant on, exactly
    /// like a scripted [`ChangeKind::CommTime`].
    pub fn set_comm_time(&mut self, node: NodeId, c: u64) {
        self.snap.tree.set_comm_time(node, c);
        let i = node.index();
        let ws = &mut self.snap.ws;
        if let Some(p) = ws.parent_of[i] {
            if ws.cold[p].observer.is_oracle() {
                let k = ws.kid_start[p] as usize + ws.child_pos[i];
                ws.kid_comm[k] = c;
            }
            self.touched.push(p);
        }
        self.touched.push(i);
        self.register_change(node, ChangeKind::CommTime(c));
    }

    /// Sets the compute weight `w_node` from the fork instant on,
    /// exactly like a scripted [`ChangeKind::ComputeTime`].
    pub fn set_compute_time(&mut self, node: NodeId, w: u64) {
        self.snap.tree.set_compute_time(node, w);
        let i = node.index();
        let ws = &mut self.snap.ws;
        if let Some(p) = ws.parent_of[i] {
            let k = ws.kid_start[p] as usize + ws.child_pos[i];
            ws.kid_compute[k] = w;
            self.touched.push(p);
        }
        self.touched.push(i);
        self.register_change(node, ChangeKind::ComputeTime(w));
    }

    /// Records an already-applied weight tweak in the branch's change
    /// script, just before the cursor: the branch configuration then
    /// documents that its platform mutated mid-run (so the terminal
    /// theory oracle, which requires a static platform, knows to stand
    /// down — exactly as for a scripted change).
    fn register_change(&mut self, node: NodeId, kind: ChangeKind) {
        let idx = self.snap.cur.next_change as usize;
        self.snap.cfg.changes.insert(
            idx,
            PlannedChange {
                after_tasks: self.snap.cur.completed,
                node,
                kind,
            },
        );
        self.snap.cur.next_change += 1;
    }

    /// Schedules an additional environment fault on the branch. Faults
    /// dated before the fork instant strike immediately. If the
    /// captured run had no fault plan, a default-tuned one is
    /// materialized (and event elision is disabled on the branch, as on
    /// any faulted run).
    pub fn add_fault(&mut self, fault: FaultEvent) {
        assert!(
            fault.node.index() < self.snap.ws.hot.len(),
            "fault targets unknown node {}",
            fault.node
        );
        self.injected.push(fault);
    }
}

// ---------------------------------------------------------------------------
// Workspace capture / restore
// ---------------------------------------------------------------------------

impl SimWorkspace {
    /// Captures every runtime container verbatim. Must be called at a
    /// quiescent point (the between-steps scratch is empty and is not
    /// captured).
    pub fn snapshot(&self) -> WorkspaceSnapshot {
        // The candidate scratch is cleared at its next use (not after),
        // so it may hold stale content here; only the service queue
        // proves quiescence.
        debug_assert!(
            self.service_queue.is_empty(),
            "workspace snapshot requires quiescence (between steps)"
        );
        WorkspaceSnapshot {
            agenda: self.agenda.snapshot(),
            hot: self.hot.clone(),
            cold: self.cold.clone(),
            sending: self.sending.clone(),
            active: self.active.clone(),
            faults: self.faults.clone(),
            parent_of: self.parent_of.clone(),
            child_pos: self.child_pos.clone(),
            kid_start: self.kid_start.clone(),
            kid_node: self.kid_node.clone(),
            kid_pending: self.kid_pending.clone(),
            kid_slot: self.kid_slot.clone(),
            kid_comm: self.kid_comm.clone(),
            kid_compute: self.kid_compute.clone(),
            kid_missed: self.kid_missed.clone(),
            pending_sum: self.pending_sum.clone(),
            slots_used: self.slots_used.clone(),
            kid_gone: self.kid_gone.clone(),
            completion_times: self.completion_times.clone(),
            checkpoint_records: self.checkpoint_records.clone(),
        }
    }

    /// Overwrites this workspace with a captured state, reusing existing
    /// allocations where possible. The scratch containers are re-cleared
    /// to their quiescent (empty) state.
    pub fn restore(&mut self, s: &WorkspaceSnapshot) {
        self.agenda.restore(&s.agenda);
        self.hot.clone_from(&s.hot);
        self.cold.clone_from(&s.cold);
        self.sending.clone_from(&s.sending);
        self.active.clone_from(&s.active);
        self.faults.clone_from(&s.faults);
        self.parent_of.clone_from(&s.parent_of);
        self.child_pos.clone_from(&s.child_pos);
        self.kid_start.clone_from(&s.kid_start);
        self.kid_node.clone_from(&s.kid_node);
        self.kid_pending.clone_from(&s.kid_pending);
        self.kid_slot.clone_from(&s.kid_slot);
        self.kid_comm.clone_from(&s.kid_comm);
        self.kid_compute.clone_from(&s.kid_compute);
        self.kid_missed.clone_from(&s.kid_missed);
        self.pending_sum.clone_from(&s.pending_sum);
        self.slots_used.clone_from(&s.slots_used);
        self.kid_gone.clone_from(&s.kid_gone);
        self.completion_times.clone_from(&s.completion_times);
        self.checkpoint_records.clone_from(&s.checkpoint_records);
        self.service_queue.clear();
        self.queued.clear();
        self.queued.resize(s.hot.len(), false);
        self.candidates.clear();
    }
}

// ---------------------------------------------------------------------------
// Checker time travel
// ---------------------------------------------------------------------------

/// Checked-mode flight recorder: a periodic full snapshot so an
/// invariant violation can be replayed from just before it. Lives
/// behind `cfg.checked`; the unchecked hot path never touches it.
pub(crate) struct TimeTravel {
    /// Events between captures (`BC_TIME_TRAVEL_PERIOD`, default 32768 —
    /// large enough that short checked tests never capture at all).
    pub(crate) period: u64,
    /// The newest capture and the event count it was taken at.
    pub(crate) last: Option<(Box<SimSnapshot>, u64)>,
}

impl TimeTravel {
    pub(crate) fn from_env() -> TimeTravel {
        let period = std::env::var("BC_TIME_TRAVEL_PERIOD")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&p: &u64| p > 0)
            .unwrap_or(32_768);
        TimeTravel { period, last: None }
    }
}

impl<S: TraceSink> Simulation<S> {
    /// Turns on (or re-tunes) periodic time-travel snapshots: every
    /// `period` events the simulation keeps a full [`SimSnapshot`], and
    /// a checked-mode invariant violation dumps the newest one plus the
    /// replayed trace suffix leading up to the violation. Checked mode
    /// arms this automatically with a large period; tests and the
    /// fuzzer use a small one.
    pub fn enable_time_travel(&mut self, period: u64) {
        assert!(period > 0, "time-travel period must be positive");
        match &mut self.time_travel {
            Some(tt) => tt.period = period,
            None => {
                self.time_travel = Some(Box::new(TimeTravel { period, last: None }));
            }
        }
    }

    /// The newest periodic snapshot and the event count it was taken at,
    /// if time travel is armed and a capture has happened.
    pub fn last_time_travel_snapshot(&self) -> Option<(&SimSnapshot, u64)> {
        self.time_travel
            .as_deref()
            .and_then(|tt| tt.last.as_ref().map(|(s, at)| (s.as_ref(), *at)))
    }

    /// Checked-tick hook: captures a periodic snapshot when one is due.
    /// Called *after* the invariant sweep, so only verified-good states
    /// are kept.
    pub(crate) fn time_travel_tick(&mut self) {
        let due = match self.time_travel.as_deref() {
            Some(tt) => {
                let since = match &tt.last {
                    Some((_, at)) => self.events_processed.saturating_sub(*at),
                    None => self.events_processed,
                };
                since >= tt.period && !self.finished
            }
            None => false,
        };
        if due {
            let snap = Box::new(self.snapshot());
            let at = self.events_processed;
            if let Some(tt) = self.time_travel.as_deref_mut() {
                tt.last = Some((snap, at));
            }
        }
    }

    /// Violation read-out: writes the newest periodic snapshot and the
    /// trace suffix replayed from it (checker off, stopping just before
    /// the violating event) to `BC_SNAPSHOT_DIR` or the system temp
    /// dir. Prints the paths to stderr; best-effort — IO errors only
    /// warn.
    pub(crate) fn dump_time_travel(&self) {
        let Some(tt) = self.time_travel.as_deref() else {
            return;
        };
        let Some((snap, at)) = &tt.last else {
            eprintln!(
                "time travel: no snapshot captured yet (period {}, violation at event {})",
                tt.period, self.events_processed
            );
            return;
        };
        let dir = std::env::var_os("BC_SNAPSHOT_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let stem = format!(
            "bc-violation-{}-{}",
            std::process::id(),
            self.events_processed
        );
        let snap_path = dir.join(format!("{stem}.snap"));
        match std::fs::write(&snap_path, snap.to_bytes()) {
            Ok(()) => eprintln!(
                "time travel: snapshot at event {at} (t={}) written to {}",
                snap.now(),
                snap_path.display()
            ),
            Err(e) => eprintln!("time travel: could not write {}: {e}", snap_path.display()),
        }
        // Replay the suffix up to just before the violating event, with
        // the checker off so the replay itself cannot re-panic; shield
        // against the underlying bug blowing up earlier than the check
        // did.
        let target = self.events_processed.saturating_sub(1);
        let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut branch = (**snap).clone();
            branch.cfg.checked = false;
            let mut sim =
                Simulation::from_snapshot_traced(&branch, SimWorkspace::new(), VecSink::new());
            while sim.events_processed < target && sim.step() {}
            sim.sink.records
        }));
        match replay {
            Ok(records) => {
                let trace_path = dir.join(format!("{stem}.trace"));
                let mut text = String::new();
                for r in &records {
                    text.push_str(&r.to_string());
                    text.push('\n');
                }
                match std::fs::write(&trace_path, text) {
                    Ok(()) => eprintln!(
                        "time travel: {} replayed suffix event(s) written to {}",
                        records.len(),
                        trace_path.display()
                    ),
                    Err(e) => {
                        eprintln!("time travel: could not write {}: {e}", trace_path.display())
                    }
                }
            }
            Err(_) => eprintln!("time travel: suffix replay itself panicked before event {target}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary serialization
// ---------------------------------------------------------------------------

/// Why [`SimSnapshot::from_bytes`] rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input ended mid-field.
    Truncated,
    /// The `BCSS` magic is missing — not a snapshot.
    BadMagic,
    /// A snapshot from a newer (or corrupt) format revision.
    UnsupportedVersion(u8),
    /// A structural consistency check failed.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "missing BCSS magic"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const MAGIC: &[u8; 4] = b"BCSS";
// v2: open-world arrivals (config plan, `Arrival` event tag, cursor layer).
const VERSION: u8 = 2;

fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}

fn put_bool(b: &mut Vec<u8>, v: bool) {
    b.push(v as u8);
}

/// LEB128 varint (unsigned).
fn put_v(b: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            b.push(byte);
            return;
        }
        b.push(byte | 0x80);
    }
}

fn put_u128(b: &mut Vec<u8>, v: u128) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_v(b: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(b, 0),
        Some(v) => {
            put_u8(b, 1);
            put_v(b, v);
        }
    }
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let v = *self.buf.get(self.pos).ok_or(SnapshotError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool out of range")),
        }
    }

    fn v(&mut self) -> Result<u64, SnapshotError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(SnapshotError::Corrupt("varint overflow"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn v32(&mut self) -> Result<u32, SnapshotError> {
        u32::try_from(self.v()?).map_err(|_| SnapshotError::Corrupt("u32 out of range"))
    }

    fn vus(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.v()?).map_err(|_| SnapshotError::Corrupt("usize out of range"))
    }

    fn u128(&mut self) -> Result<u128, SnapshotError> {
        let end = self.pos.checked_add(16).ok_or(SnapshotError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(u128::from_le_bytes(bytes.try_into().expect("16 bytes")))
    }

    fn opt_v(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(self.v()?),
            _ => return Err(SnapshotError::Corrupt("option tag out of range")),
        })
    }

    /// Guard for length prefixes of multi-byte records: a hostile length
    /// can never exceed the bytes actually remaining.
    fn len_capped(&mut self, min_record: usize) -> Result<usize, SnapshotError> {
        let len = self.vus()?;
        let left = self.buf.len() - self.pos;
        if len > left / min_record.max(1) {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let n = self.len_capped(1)?;
        let end = self.pos + n; // len_capped bounds n by the remainder
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| SnapshotError::Corrupt("string not UTF-8"))?;
        self.pos = end;
        Ok(s.to_owned())
    }
}

fn put_handle(b: &mut Vec<u8>, h: EventHandle) {
    let (slot, generation) = h.raw_parts();
    put_v(b, slot as u64);
    put_v(b, generation as u64);
}

fn get_handle(r: &mut Rd) -> Result<EventHandle, SnapshotError> {
    let slot = r.v32()?;
    let generation = r.v32()?;
    Ok(EventHandle::from_raw_parts(slot, generation))
}

fn put_event(b: &mut Vec<u8>, e: &Event) {
    match *e {
        Event::ComputeDone { node } => {
            put_u8(b, 0);
            put_v(b, node as u64);
        }
        Event::ComputeChain { node, count } => {
            put_u8(b, 1);
            put_v(b, node as u64);
            put_v(b, count);
        }
        Event::SendDone { node } => {
            put_u8(b, 2);
            put_v(b, node as u64);
        }
        Event::TransferDone { node } => {
            put_u8(b, 3);
            put_v(b, node as u64);
        }
        Event::Fault { index } => {
            put_u8(b, 4);
            put_v(b, index as u64);
        }
        Event::OutageEnd { node } => {
            put_u8(b, 5);
            put_v(b, node as u64);
        }
        Event::RequestTimeout { node } => {
            put_u8(b, 6);
            put_v(b, node as u64);
        }
        Event::Reissue { count } => {
            put_u8(b, 7);
            put_v(b, count);
        }
        Event::Arrival => put_u8(b, 8),
    }
}

fn get_event(r: &mut Rd) -> Result<Event, SnapshotError> {
    Ok(match r.u8()? {
        0 => Event::ComputeDone { node: r.vus()? },
        1 => Event::ComputeChain {
            node: r.vus()?,
            count: r.v()?,
        },
        2 => Event::SendDone { node: r.vus()? },
        3 => Event::TransferDone { node: r.vus()? },
        4 => Event::Fault { index: r.vus()? },
        5 => Event::OutageEnd { node: r.vus()? },
        6 => Event::RequestTimeout { node: r.vus()? },
        7 => Event::Reissue { count: r.v()? },
        8 => Event::Arrival,
        _ => return Err(SnapshotError::Corrupt("event tag out of range")),
    })
}

fn put_buffer_policy(b: &mut Vec<u8>, p: &BufferPolicy) {
    match *p {
        BufferPolicy::Fixed(k) => {
            put_u8(b, 0);
            put_v(b, k as u64);
        }
        BufferPolicy::Growable {
            initial,
            cap,
            gate,
            decay_after,
        } => {
            put_u8(b, 1);
            put_v(b, initial as u64);
            put_opt_v(b, cap.map(u64::from));
            put_u8(
                b,
                match gate {
                    GrowthGate::EveryEvent => 0,
                    GrowthGate::OncePerArrival => 1,
                    GrowthGate::AfterPoolFilled => 2,
                },
            );
            put_opt_v(b, decay_after);
        }
    }
}

fn get_buffer_policy(r: &mut Rd) -> Result<BufferPolicy, SnapshotError> {
    Ok(match r.u8()? {
        0 => BufferPolicy::Fixed(r.v32()?),
        1 => {
            let initial = r.v32()?;
            let cap = match r.opt_v()? {
                None => None,
                Some(v) => {
                    Some(u32::try_from(v).map_err(|_| SnapshotError::Corrupt("cap out of range"))?)
                }
            };
            let gate = match r.u8()? {
                0 => GrowthGate::EveryEvent,
                1 => GrowthGate::OncePerArrival,
                2 => GrowthGate::AfterPoolFilled,
                _ => return Err(SnapshotError::Corrupt("growth gate out of range")),
            };
            let decay_after = r.opt_v()?;
            BufferPolicy::Growable {
                initial,
                cap,
                gate,
                decay_after,
            }
        }
        _ => return Err(SnapshotError::Corrupt("buffer policy tag out of range")),
    })
}

fn put_observer_kind(b: &mut Vec<u8>, k: &ObserverKind) {
    match *k {
        ObserverKind::Oracle => put_u8(b, 0),
        ObserverKind::LastSample { initial } => {
            put_u8(b, 1);
            put_v(b, initial);
        }
        ObserverKind::Ema { initial, num, den } => {
            put_u8(b, 2);
            put_v(b, initial);
            put_v(b, num as u64);
            put_v(b, den as u64);
        }
    }
}

fn get_observer_kind(r: &mut Rd) -> Result<ObserverKind, SnapshotError> {
    Ok(match r.u8()? {
        0 => ObserverKind::Oracle,
        1 => ObserverKind::LastSample { initial: r.v()? },
        2 => {
            let initial = r.v()?;
            let num = r.v32()?;
            let den = r.v32()?;
            if num == 0 || den == 0 || num > den {
                return Err(SnapshotError::Corrupt("EMA weight out of range"));
            }
            ObserverKind::Ema { initial, num, den }
        }
        _ => return Err(SnapshotError::Corrupt("observer tag out of range")),
    })
}

fn put_fault_kind(b: &mut Vec<u8>, k: &FaultKind) {
    match *k {
        FaultKind::RequestLoss { batches } => {
            put_u8(b, 0);
            put_v(b, batches as u64);
        }
        FaultKind::TransferAbort => put_u8(b, 1),
        FaultKind::LinkOutage { duration } => {
            put_u8(b, 2);
            put_v(b, duration);
        }
        FaultKind::Crash => put_u8(b, 3),
        FaultKind::DuplicateDelivery { copies } => {
            put_u8(b, 4);
            put_v(b, copies as u64);
        }
    }
}

fn get_fault_kind(r: &mut Rd) -> Result<FaultKind, SnapshotError> {
    Ok(match r.u8()? {
        0 => FaultKind::RequestLoss { batches: r.v32()? },
        1 => FaultKind::TransferAbort,
        2 => FaultKind::LinkOutage { duration: r.v()? },
        3 => FaultKind::Crash,
        4 => FaultKind::DuplicateDelivery { copies: r.v32()? },
        _ => return Err(SnapshotError::Corrupt("fault kind out of range")),
    })
}

fn put_recovery(b: &mut Vec<u8>, t: &RecoveryTuning) {
    put_v(b, t.request_timeout);
    put_v(b, t.backoff_cap as u64);
    put_v(b, t.max_retries as u64);
    put_u8(b, t.missed_ack_threshold);
    put_v(b, t.reissue_delay);
}

fn get_recovery(r: &mut Rd) -> Result<RecoveryTuning, SnapshotError> {
    Ok(RecoveryTuning {
        request_timeout: r.v()?,
        backoff_cap: r.v32()?,
        max_retries: r.v32()?,
        missed_ack_threshold: r.u8()?,
        reissue_delay: r.v()?,
    })
}

fn put_tree(b: &mut Vec<u8>, tree: &Tree) {
    put_v(b, tree.len() as u64);
    put_v(b, tree.root().compute_time);
    for id in tree.ids().skip(1) {
        let node = tree.node(id);
        put_v(b, node.parent.expect("non-root has parent").index() as u64);
        put_v(b, node.comm_time);
        put_v(b, node.compute_time);
    }
}

fn get_tree(r: &mut Rd) -> Result<Tree, SnapshotError> {
    let n = r.len_capped(1)?;
    if n == 0 {
        return Err(SnapshotError::Corrupt("empty tree"));
    }
    let root_w = r.v()?;
    if root_w == 0 {
        return Err(SnapshotError::Corrupt("zero compute weight"));
    }
    let mut tree = Tree::new(root_w);
    for id in 1..n {
        let parent = r.vus()?;
        let comm = r.v()?;
        let compute = r.v()?;
        if parent >= id {
            return Err(SnapshotError::Corrupt("parent does not precede child"));
        }
        if comm == 0 || compute == 0 {
            return Err(SnapshotError::Corrupt("zero edge/compute weight"));
        }
        // `add_child` appends ids in order, so reconstructing in id
        // order reproduces the original child lists (which are in id
        // order by construction).
        tree.add_child(NodeId(parent as u32), comm, compute);
    }
    Ok(tree)
}

fn put_cfg(b: &mut Vec<u8>, cfg: &SimConfig) {
    put_u8(
        b,
        match cfg.protocol {
            Protocol::NonInterruptible => 0,
            Protocol::Interruptible => 1,
        },
    );
    put_buffer_policy(b, &cfg.buffers);
    put_u8(
        b,
        match cfg.selector {
            SelectorKind::BandwidthCentric => 0,
            SelectorKind::ComputeCentric => 1,
            SelectorKind::RoundRobin => 2,
        },
    );
    put_observer_kind(b, &cfg.observer);
    put_bool(b, cfg.self_first);
    put_v(b, cfg.total_tasks);
    put_v(b, cfg.checkpoints.len() as u64);
    for &c in &cfg.checkpoints {
        put_v(b, c);
    }
    put_v(b, cfg.changes.len() as u64);
    for ch in &cfg.changes {
        put_v(b, ch.after_tasks);
        put_v(b, ch.node.index() as u64);
        match ch.kind {
            ChangeKind::CommTime(c) => {
                put_u8(b, 0);
                put_v(b, c);
            }
            ChangeKind::ComputeTime(w) => {
                put_u8(b, 1);
                put_v(b, w);
            }
            ChangeKind::Join { comm, compute } => {
                put_u8(b, 2);
                put_v(b, comm);
                put_v(b, compute);
            }
            ChangeKind::Leave => put_u8(b, 3),
        }
    }
    put_v(b, cfg.max_events);
    put_bool(b, cfg.checked);
    put_bool(b, cfg.elision);
    match &cfg.fault {
        None => put_u8(b, 0),
        Some(FaultInjection::FbOffByOne) => put_u8(b, 1),
        Some(FaultInjection::LeakTask { every }) => {
            put_u8(b, 2);
            put_v(b, *every);
        }
        Some(FaultInjection::SwallowReissue) => put_u8(b, 3),
        Some(FaultInjection::LeakQueuedTask { every }) => {
            put_u8(b, 4);
            put_v(b, *every);
        }
    }
    match &cfg.fault_plan {
        None => put_u8(b, 0),
        Some(plan) => {
            put_u8(b, 1);
            put_v(b, plan.seed);
            put_v(b, plan.faults.len() as u64);
            for f in &plan.faults {
                put_v(b, f.at);
                put_v(b, f.node.index() as u64);
                put_fault_kind(b, &f.kind);
            }
            put_recovery(b, &plan.recovery);
        }
    }
    match &cfg.arrivals {
        None => put_u8(b, 0),
        Some(plan) => {
            put_u8(b, 1);
            put_arrival_plan(b, plan);
        }
    }
}

fn put_arrival_plan(b: &mut Vec<u8>, plan: &ArrivalPlan) {
    put_v(b, plan.seed);
    put_v(b, plan.classes.len() as u64);
    for class in &plan.classes {
        put_v(b, class.name.len() as u64);
        b.extend_from_slice(class.name.as_bytes());
        put_v(b, class.work_units);
        match &class.process {
            ArrivalProcess::Poisson { mean_gap, count } => {
                put_u8(b, 0);
                put_v(b, *mean_gap);
                put_v(b, *count);
            }
            ArrivalProcess::Burst {
                phase,
                period,
                size,
                bursts,
            } => {
                put_u8(b, 1);
                put_v(b, *phase);
                put_v(b, *period);
                put_v(b, *size);
                put_v(b, *bursts);
            }
            ArrivalProcess::Trace { times } => {
                put_u8(b, 2);
                put_v(b, times.len() as u64);
                for &t in times {
                    put_v(b, t);
                }
            }
        }
    }
    put_v(b, plan.queue_cap);
    put_u8(
        b,
        match plan.policy {
            AdmissionPolicy::Drop => 0,
            AdmissionPolicy::Defer => 1,
        },
    );
}

fn get_arrival_plan(r: &mut Rd) -> Result<ArrivalPlan, SnapshotError> {
    let seed = r.v()?;
    let mut classes = Vec::with_capacity(r.len_capped(3)?);
    for _ in 0..classes.capacity() {
        let name = r.string()?;
        let work_units = r.v()?;
        let process = match r.u8()? {
            0 => ArrivalProcess::Poisson {
                mean_gap: r.v()?,
                count: r.v()?,
            },
            1 => ArrivalProcess::Burst {
                phase: r.v()?,
                period: r.v()?,
                size: r.v()?,
                bursts: r.v()?,
            },
            2 => {
                let mut times = Vec::with_capacity(r.len_capped(1)?);
                for _ in 0..times.capacity() {
                    times.push(r.v()?);
                }
                ArrivalProcess::Trace { times }
            }
            _ => return Err(SnapshotError::Corrupt("arrival process tag out of range")),
        };
        classes.push(TaskClass {
            name,
            work_units,
            process,
        });
    }
    let queue_cap = r.v()?;
    let policy = match r.u8()? {
        0 => AdmissionPolicy::Drop,
        1 => AdmissionPolicy::Defer,
        _ => return Err(SnapshotError::Corrupt("admission policy tag out of range")),
    };
    Ok(ArrivalPlan {
        seed,
        classes,
        queue_cap,
        policy,
    })
}

fn put_arrival_cursor(b: &mut Vec<u8>, c: &ArrivalCursor) {
    put_v(b, c.cursor);
    put_v(b, c.deferred.len() as u64);
    for &d in &c.deferred {
        put_v(b, d as u64);
    }
    put_v(b, c.deferred_units);
    put_v(b, c.submitted);
    put_v(b, c.admitted);
    put_v(b, c.rejected);
    put_v(b, c.deferrals);
    put_v(b, c.peak_deferred);
    put_v(b, c.leak_tick);
    put_v(b, c.admit_times.len() as u64);
    for &t in &c.admit_times {
        put_v(b, t);
    }
    put_v(b, c.dispatch_times.len() as u64);
    for &t in &c.dispatch_times {
        put_v(b, t);
    }
    // admit_class has admit_times's length by construction; no second
    // prefix needed, but keep one so the record is self-describing.
    put_v(b, c.admit_class.len() as u64);
    for &cl in &c.admit_class {
        put_v(b, cl as u64);
    }
    put_v(b, c.admitted_per_class.len() as u64);
    for &n in &c.admitted_per_class {
        put_v(b, n);
    }
}

fn get_arrival_cursor(r: &mut Rd) -> Result<ArrivalCursor, SnapshotError> {
    let cursor = r.v()?;
    let mut deferred = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..deferred.capacity() {
        deferred.push(r.v32()?);
    }
    let deferred_units = r.v()?;
    let submitted = r.v()?;
    let admitted = r.v()?;
    let rejected = r.v()?;
    let deferrals = r.v()?;
    let peak_deferred = r.v()?;
    let leak_tick = r.v()?;
    let mut admit_times = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..admit_times.capacity() {
        admit_times.push(r.v()?);
    }
    let mut dispatch_times = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..dispatch_times.capacity() {
        dispatch_times.push(r.v()?);
    }
    let mut admit_class = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..admit_class.capacity() {
        admit_class.push(r.v32()?);
    }
    if admit_class.len() != admit_times.len() {
        return Err(SnapshotError::Corrupt("admit class/time length mismatch"));
    }
    let mut admitted_per_class = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..admitted_per_class.capacity() {
        admitted_per_class.push(r.v()?);
    }
    Ok(ArrivalCursor {
        cursor,
        deferred,
        deferred_units,
        submitted,
        admitted,
        rejected,
        deferrals,
        peak_deferred,
        leak_tick,
        admit_times,
        dispatch_times,
        admit_class,
        admitted_per_class,
    })
}

fn get_cfg(r: &mut Rd) -> Result<SimConfig, SnapshotError> {
    let protocol = match r.u8()? {
        0 => Protocol::NonInterruptible,
        1 => Protocol::Interruptible,
        _ => return Err(SnapshotError::Corrupt("protocol tag out of range")),
    };
    let buffers = get_buffer_policy(r)?;
    let selector = match r.u8()? {
        0 => SelectorKind::BandwidthCentric,
        1 => SelectorKind::ComputeCentric,
        2 => SelectorKind::RoundRobin,
        _ => return Err(SnapshotError::Corrupt("selector tag out of range")),
    };
    let observer = get_observer_kind(r)?;
    let self_first = r.bool()?;
    let total_tasks = r.v()?;
    let mut checkpoints = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..checkpoints.capacity() {
        checkpoints.push(r.v()?);
    }
    let mut changes = Vec::with_capacity(r.len_capped(3)?);
    for _ in 0..changes.capacity() {
        let after_tasks = r.v()?;
        let node = NodeId(r.v32()?);
        let kind = match r.u8()? {
            0 => ChangeKind::CommTime(r.v()?),
            1 => ChangeKind::ComputeTime(r.v()?),
            2 => ChangeKind::Join {
                comm: r.v()?,
                compute: r.v()?,
            },
            3 => ChangeKind::Leave,
            _ => return Err(SnapshotError::Corrupt("change tag out of range")),
        };
        changes.push(PlannedChange {
            after_tasks,
            node,
            kind,
        });
    }
    let max_events = r.v()?;
    let checked = r.bool()?;
    let elision = r.bool()?;
    let fault = match r.u8()? {
        0 => None,
        1 => Some(FaultInjection::FbOffByOne),
        2 => Some(FaultInjection::LeakTask { every: r.v()? }),
        3 => Some(FaultInjection::SwallowReissue),
        4 => Some(FaultInjection::LeakQueuedTask { every: r.v()? }),
        _ => return Err(SnapshotError::Corrupt("fault-injection tag out of range")),
    };
    let fault_plan = match r.u8()? {
        0 => None,
        1 => {
            let seed = r.v()?;
            let mut faults = Vec::with_capacity(r.len_capped(3)?);
            for _ in 0..faults.capacity() {
                let at = r.v()?;
                let node = NodeId(r.v32()?);
                let kind = get_fault_kind(r)?;
                faults.push(FaultEvent { at, node, kind });
            }
            let recovery = get_recovery(r)?;
            Some(FaultPlan {
                seed,
                faults,
                recovery,
            })
        }
        _ => return Err(SnapshotError::Corrupt("fault-plan tag out of range")),
    };
    let arrivals = match r.u8()? {
        0 => None,
        1 => Some(get_arrival_plan(r)?),
        _ => return Err(SnapshotError::Corrupt("arrival-plan tag out of range")),
    };
    Ok(SimConfig {
        protocol,
        buffers,
        selector,
        observer,
        self_first,
        total_tasks,
        checkpoints,
        changes,
        max_events,
        checked,
        elision,
        fault,
        fault_plan,
        arrivals,
    })
}

fn put_ledger(b: &mut Vec<u8>, s: &LedgerState) {
    put_buffer_policy(b, &s.policy);
    put_v(b, s.capacity as u64);
    put_v(b, s.held as u64);
    put_v(b, s.covered as u64);
    put_v(b, s.max_capacity as u64);
    put_v(b, s.peak_held as u64);
    put_bool(b, s.filled_since_growth);
    put_bool(b, s.grown_since_arrival);
}

fn get_ledger(r: &mut Rd) -> Result<LedgerState, SnapshotError> {
    Ok(LedgerState {
        policy: get_buffer_policy(r)?,
        capacity: r.v32()?,
        held: r.v32()?,
        covered: r.v32()?,
        max_capacity: r.v32()?,
        peak_held: r.v32()?,
        filled_since_growth: r.bool()?,
        grown_since_arrival: r.bool()?,
    })
}

fn put_ws(b: &mut Vec<u8>, ws: &WorkspaceSnapshot) {
    // Agenda: both tiers verbatim (tombstones, bucket drain heads, slot
    // generations, and free-list order are all part of the state — they
    // decide future handle assignment and pop order).
    let a = &ws.agenda;
    put_v(b, a.heap.len() as u64);
    for e in &a.heap {
        put_u128(b, e.raw());
    }
    put_v(b, a.buckets.len() as u64);
    for (index, head, entries) in &a.buckets {
        put_v(b, *index as u64);
        put_v(b, *head as u64);
        put_v(b, entries.len() as u64);
        for e in entries {
            put_u128(b, e.raw());
        }
    }
    put_v(b, a.slots.len() as u64);
    for s in &a.slots {
        put_v(b, s.generation as u64);
        put_bool(b, s.in_far);
        match &s.payload {
            None => put_u8(b, 0),
            Some(e) => {
                put_u8(b, 1);
                put_event(b, e);
            }
        }
    }
    put_v(b, a.free.len() as u64);
    for &f in &a.free {
        put_v(b, f as u64);
    }
    put_v(b, a.now);
    put_v(b, a.seq);
    put_v(b, a.live);
    put_v(b, a.near_live);
    put_v(b, a.near_entries);
    put_v(b, a.far_dead);

    put_v(b, ws.hot.len() as u64);
    for h in &ws.hot {
        match &h.ledger {
            None => put_u8(b, 0),
            Some(l) => {
                put_u8(b, 1);
                put_ledger(b, &l.state());
            }
        }
        put_opt_v(b, h.computing_since);
        put_v(b, h.tasks_computed);
        put_v(b, h.busy_compute);
        put_v(b, h.busy_link);
        put_bool(b, h.departed);
        put_bool(b, h.crashed);
    }
    for c in &ws.cold {
        let o = c.observer.state();
        put_observer_kind(b, &o.kind);
        put_v(b, o.estimates.len() as u64);
        for &e in &o.estimates {
            put_v(b, e);
        }
        for &s in &o.samples {
            put_v(b, s);
        }
        match c.selector {
            ChildSelector::BandwidthCentric => put_u8(b, 0),
            ChildSelector::ComputeCentric => put_u8(b, 1),
            ChildSelector::RoundRobin { cursor } => {
                put_u8(b, 2);
                put_v(b, cursor as u64);
            }
        }
        put_v(b, c.preemptions);
        put_v(b, c.last_pressure);
    }
    for s in &ws.sending {
        match s {
            None => put_u8(b, 0),
            Some(s) => {
                put_u8(b, 1);
                put_v(b, s.child_pos as u64);
                put_v(b, s.started_at);
                put_handle(b, s.handle);
            }
        }
    }
    for a in &ws.active {
        match a {
            None => put_u8(b, 0),
            Some(a) => {
                put_u8(b, 1);
                put_v(b, a.child_pos as u64);
                put_v(b, a.started_at);
                put_v(b, a.remaining_at_start);
                put_handle(b, a.handle);
            }
        }
    }
    for f in &ws.faults {
        put_bool(b, f.orphaned);
        put_v(b, f.lost_requests as u64);
        put_v(b, f.pending_nacks as u64);
        put_v(b, f.retry as u64);
        match f.timeout {
            None => put_u8(b, 0),
            Some(h) => {
                put_u8(b, 1);
                put_handle(b, h);
            }
        }
        put_v(b, f.outage_until);
        put_v(b, f.drop_batches as u64);
        put_v(b, f.dup_deliveries as u64);
    }
    for p in &ws.parent_of {
        put_v(b, p.map_or(0, |p| p as u64 + 1));
    }
    for &c in &ws.child_pos {
        put_v(b, c as u64);
    }
    for &k in &ws.kid_start {
        put_v(b, k as u64);
    }
    put_v(b, ws.kid_node.len() as u64);
    for &k in &ws.kid_node {
        put_v(b, k as u64);
    }
    for &k in &ws.kid_pending {
        put_v(b, k as u64);
    }
    for s in &ws.kid_slot {
        match s {
            None => put_u8(b, 0),
            Some(s) => {
                put_u8(b, 1);
                put_v(b, s.remaining);
                put_v(b, s.total);
                put_bool(b, s.started);
            }
        }
    }
    for &k in &ws.kid_comm {
        put_v(b, k);
    }
    for &k in &ws.kid_compute {
        put_v(b, k);
    }
    b.extend_from_slice(&ws.kid_missed);
    for &p in &ws.pending_sum {
        put_v(b, p as u64);
    }
    for &s in &ws.slots_used {
        put_v(b, s as u64);
    }
    for &g in &ws.kid_gone {
        put_bool(b, g);
    }
    put_v(b, ws.completion_times.len() as u64);
    for &t in &ws.completion_times {
        put_v(b, t);
    }
    put_v(b, ws.checkpoint_records.len() as u64);
    for &(tasks, max) in &ws.checkpoint_records {
        put_v(b, tasks);
        put_v(b, max as u64);
    }
}

fn get_ws(r: &mut Rd) -> Result<WorkspaceSnapshot, SnapshotError> {
    let mut heap = Vec::with_capacity(r.len_capped(16)?);
    for _ in 0..heap.capacity() {
        heap.push(PackedEvent::from_raw(r.u128()?));
    }
    let mut buckets = Vec::with_capacity(r.len_capped(3)?);
    for _ in 0..buckets.capacity() {
        let index = r.v32()?;
        if index >= NEAR_BUCKETS {
            return Err(SnapshotError::Corrupt("bucket index out of range"));
        }
        let head = r.v32()?;
        let mut entries = Vec::with_capacity(r.len_capped(16)?);
        for _ in 0..entries.capacity() {
            entries.push(PackedEvent::from_raw(r.u128()?));
        }
        if head as usize > entries.len() {
            return Err(SnapshotError::Corrupt("bucket head past entries"));
        }
        buckets.push((index, head, entries));
    }
    let mut slots = Vec::with_capacity(r.len_capped(3)?);
    for _ in 0..slots.capacity() {
        let generation = r.v32()?;
        let in_far = r.bool()?;
        let payload = match r.u8()? {
            0 => None,
            1 => Some(get_event(r)?),
            _ => return Err(SnapshotError::Corrupt("slot payload tag out of range")),
        };
        slots.push(SlotSnapshot {
            generation,
            in_far,
            payload,
        });
    }
    let mut free = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..free.capacity() {
        let f = r.v32()?;
        if f as usize >= slots.len() {
            return Err(SnapshotError::Corrupt("free slot out of range"));
        }
        free.push(f);
    }
    let agenda = AgendaSnapshot {
        heap,
        buckets,
        slots,
        free,
        now: r.v()?,
        seq: r.v()?,
        live: r.v()?,
        near_live: r.v()?,
        near_entries: r.v()?,
        far_dead: r.v()?,
    };

    let n = r.len_capped(7)?;
    let mut hot = Vec::with_capacity(n);
    for _ in 0..n {
        let ledger = match r.u8()? {
            0 => None,
            1 => Some(BufferLedger::from_state(get_ledger(r)?)),
            _ => return Err(SnapshotError::Corrupt("ledger tag out of range")),
        };
        hot.push(HotNode {
            ledger,
            computing_since: r.opt_v()?,
            tasks_computed: r.v()?,
            busy_compute: r.v()?,
            busy_link: r.v()?,
            departed: r.bool()?,
            crashed: r.bool()?,
        });
    }
    let mut cold = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = get_observer_kind(r)?;
        let kids = r.len_capped(1)?;
        let mut estimates = Vec::with_capacity(kids);
        for _ in 0..kids {
            estimates.push(r.v()?);
        }
        let mut samples = Vec::with_capacity(kids);
        for _ in 0..kids {
            samples.push(r.v()?);
        }
        let observer = LatencyObserver::from_state(ObserverState {
            kind,
            estimates,
            samples,
        });
        let selector = match r.u8()? {
            0 => ChildSelector::BandwidthCentric,
            1 => ChildSelector::ComputeCentric,
            2 => ChildSelector::RoundRobin {
                cursor: r.v()? as usize,
            },
            _ => return Err(SnapshotError::Corrupt("selector tag out of range")),
        };
        cold.push(ColdNode {
            observer,
            selector,
            preemptions: r.v()?,
            last_pressure: r.v()?,
        });
    }
    let mut sending = Vec::with_capacity(n);
    for _ in 0..n {
        sending.push(match r.u8()? {
            0 => None,
            1 => Some(Sending {
                child_pos: r.vus()?,
                started_at: r.v()?,
                handle: get_handle(r)?,
            }),
            _ => return Err(SnapshotError::Corrupt("sending tag out of range")),
        });
    }
    let mut active = Vec::with_capacity(n);
    for _ in 0..n {
        active.push(match r.u8()? {
            0 => None,
            1 => Some(ActiveTransfer {
                child_pos: r.vus()?,
                started_at: r.v()?,
                remaining_at_start: r.v()?,
                handle: get_handle(r)?,
            }),
            _ => return Err(SnapshotError::Corrupt("active tag out of range")),
        });
    }
    let mut faults = Vec::with_capacity(n);
    for _ in 0..n {
        faults.push(FaultRt {
            orphaned: r.bool()?,
            lost_requests: r.v32()?,
            pending_nacks: r.v32()?,
            retry: r.v32()?,
            timeout: match r.u8()? {
                0 => None,
                1 => Some(get_handle(r)?),
                _ => return Err(SnapshotError::Corrupt("timeout tag out of range")),
            },
            outage_until: r.v()?,
            drop_batches: r.v32()?,
            dup_deliveries: r.v32()?,
        });
    }
    let mut parent_of = Vec::with_capacity(n);
    for _ in 0..n {
        let p = r.v()?;
        parent_of.push(if p == 0 { None } else { Some(p as usize - 1) });
    }
    let mut child_pos = Vec::with_capacity(n);
    for _ in 0..n {
        child_pos.push(r.vus()?);
    }
    let mut kid_start = Vec::with_capacity(n + 1);
    for _ in 0..n + 1 {
        kid_start.push(r.v32()?);
    }
    let kids_total = r.len_capped(1)?;
    if kid_start.first() != Some(&0)
        || kid_start.last() != Some(&(kids_total as u32))
        || kid_start.windows(2).any(|w| w[0] > w[1])
    {
        return Err(SnapshotError::Corrupt("CSR row offsets inconsistent"));
    }
    let mut kid_node = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        let k = r.v32()?;
        if k as usize >= n {
            return Err(SnapshotError::Corrupt("child node out of range"));
        }
        kid_node.push(k);
    }
    let mut kid_pending = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        kid_pending.push(r.v32()?);
    }
    let mut kid_slot = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        kid_slot.push(match r.u8()? {
            0 => None,
            1 => Some(SlotTransfer {
                remaining: r.v()?,
                total: r.v()?,
                started: r.bool()?,
            }),
            _ => return Err(SnapshotError::Corrupt("kid slot tag out of range")),
        });
    }
    let mut kid_comm = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        kid_comm.push(r.v()?);
    }
    let mut kid_compute = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        kid_compute.push(r.v()?);
    }
    let mut kid_missed = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        kid_missed.push(r.u8()?);
    }
    let mut pending_sum = Vec::with_capacity(n);
    for _ in 0..n {
        pending_sum.push(r.v32()?);
    }
    let mut slots_used = Vec::with_capacity(n);
    for _ in 0..n {
        slots_used.push(r.v32()?);
    }
    let mut kid_gone = Vec::with_capacity(kids_total);
    for _ in 0..kids_total {
        kid_gone.push(r.bool()?);
    }
    let mut completion_times = Vec::with_capacity(r.len_capped(1)?);
    for _ in 0..completion_times.capacity() {
        completion_times.push(r.v()?);
    }
    let mut checkpoint_records = Vec::with_capacity(r.len_capped(2)?);
    for _ in 0..checkpoint_records.capacity() {
        let tasks = r.v()?;
        let max = r.v32()?;
        checkpoint_records.push((tasks, max));
    }
    Ok(WorkspaceSnapshot {
        agenda,
        hot,
        cold,
        sending,
        active,
        faults,
        parent_of,
        child_pos,
        kid_start,
        kid_node,
        kid_pending,
        kid_slot,
        kid_comm,
        kid_compute,
        kid_missed,
        pending_sum,
        slots_used,
        kid_gone,
        completion_times,
        checkpoint_records,
    })
}

fn put_fstats(b: &mut Vec<u8>, s: &FaultStats) {
    put_v(b, s.faults_injected);
    put_v(b, s.tasks_lost);
    put_v(b, s.tasks_reissued);
    put_v(b, s.requests_dropped);
    put_v(b, s.retries);
    put_v(b, s.gave_up);
    put_v(b, s.crashes);
    put_v(b, s.transfer_aborts);
    put_v(b, s.children_declared_dead);
    put_v(b, s.children_revived);
    put_v(b, s.duplicates_dropped);
    put_opt_v(b, s.last_crash_time);
}

fn get_fstats(r: &mut Rd) -> Result<FaultStats, SnapshotError> {
    Ok(FaultStats {
        faults_injected: r.v()?,
        tasks_lost: r.v()?,
        tasks_reissued: r.v()?,
        requests_dropped: r.v()?,
        retries: r.v()?,
        gave_up: r.v()?,
        crashes: r.v()?,
        transfer_aborts: r.v()?,
        children_declared_dead: r.v()?,
        children_revived: r.v()?,
        duplicates_dropped: r.v()?,
        last_crash_time: r.opt_v()?,
    })
}

impl SimSnapshot {
    /// Serializes to the versioned binary snapshot format (see the
    /// module docs). Deterministic: equal snapshots yield equal bytes,
    /// and re-encoding a decoded snapshot reproduces its input.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(256);
        b.extend_from_slice(MAGIC);
        put_u8(&mut b, VERSION);
        put_tree(&mut b, &self.tree);
        put_cfg(&mut b, &self.cfg);
        put_ws(&mut b, &self.ws);
        let c = &self.cur;
        put_v(&mut b, c.remaining);
        put_v(&mut b, c.completed);
        put_v(&mut b, c.next_checkpoint);
        put_v(&mut b, c.next_change);
        put_v(&mut b, c.events_processed);
        put_v(&mut b, c.preemptions);
        put_v(&mut b, c.transfers_started);
        put_v(&mut b, c.requests_sent);
        put_bool(&mut b, c.started);
        put_bool(&mut b, c.finished);
        put_v(&mut b, c.check_last_now);
        put_v(&mut b, c.events_since_sweep as u64);
        put_v(&mut b, c.faulty_deliveries);
        put_bool(&mut b, c.fault_active);
        put_recovery(&mut b, &c.recovery);
        put_v(&mut b, c.fault_seed);
        put_u8(&mut b, c.dead_threshold);
        put_v(&mut b, c.lost_pending);
        put_fstats(&mut b, &c.fstats);
        put_v(&mut b, c.elided);
        put_v(&mut b, c.finish_target);
        match &c.arrivals {
            None => put_u8(&mut b, 0),
            Some(ar) => {
                put_u8(&mut b, 1);
                put_arrival_cursor(&mut b, ar);
            }
        }
        b
    }

    /// Decodes a snapshot serialized by [`SimSnapshot::to_bytes`].
    /// Structural consistency (magic, version, tags, lengths, CSR
    /// shape) is verified; semantic validity — that the state is one a
    /// real run can reach — is trusted, as with any checkpoint file.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimSnapshot, SnapshotError> {
        let mut r = Rd { buf: bytes, pos: 0 };
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = r.u8().map_err(|_| SnapshotError::BadMagic)?;
        }
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let tree = get_tree(&mut r)?;
        let cfg = get_cfg(&mut r)?;
        let ws = get_ws(&mut r)?;
        if ws.hot.len() != tree.len() {
            return Err(SnapshotError::Corrupt("arena size != tree size"));
        }
        let cur = CursorSnapshot {
            remaining: r.v()?,
            completed: r.v()?,
            next_checkpoint: r.v()?,
            next_change: r.v()?,
            events_processed: r.v()?,
            preemptions: r.v()?,
            transfers_started: r.v()?,
            requests_sent: r.v()?,
            started: r.bool()?,
            finished: r.bool()?,
            check_last_now: r.v()?,
            events_since_sweep: r.v32()?,
            faulty_deliveries: r.v()?,
            fault_active: r.bool()?,
            recovery: get_recovery(&mut r)?,
            fault_seed: r.v()?,
            dead_threshold: r.u8()?,
            lost_pending: r.v()?,
            fstats: get_fstats(&mut r)?,
            elided: r.v()?,
            finish_target: r.v()?,
            arrivals: match r.u8()? {
                0 => None,
                1 => Some(get_arrival_cursor(&mut r)?),
                _ => return Err(SnapshotError::Corrupt("arrival-cursor tag out of range")),
            },
        };
        if r.pos != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        // Cross-layer consistency: an arrival plan in the config must come
        // with cursor state and vice versa — restore unwraps the pairing.
        if cfg.arrivals.is_some() != cur.arrivals.is_some() {
            return Err(SnapshotError::Corrupt("arrival plan/cursor mismatch"));
        }
        Ok(SimSnapshot { tree, cfg, ws, cur })
    }
}
