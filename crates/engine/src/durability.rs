//! # Durable checkpoints — atomic, checksummed, generational
//!
//! The snapshot layer ([`crate::snapshot`]) gives every live simulation a
//! canonical byte form; this module makes those bytes survive the process.
//! Three guarantees, in order of paranoia:
//!
//! 1. **Atomicity.** A checkpoint is written to a temp file in the target
//!    directory, `fsync`ed, then `rename`d into place, then the directory
//!    itself is `fsync`ed. A reader never observes a half-written file under
//!    the final name — a crash mid-write leaves at most a stray `.tmp`.
//! 2. **Detection.** Every file carries a `BCCK` container: magic, format
//!    version, a *kind* tag (so a campaign checkpoint can never be fed to
//!    the server recovery path), the payload length, and an FNV-1a checksum
//!    over the payload. Truncation, bit-flips, and foreign files all decode
//!    to a typed [`CheckpointError`] — never a panic, never silent garbage.
//! 3. **Fallback.** Files are generation-numbered (`prefix-<gen>.bcc`).
//!    [`CheckpointStore::load_latest`] walks generations newest-first and
//!    returns the first one that verifies, reporting every generation it
//!    had to skip so callers can surface the corruption.
//!
//! The container is deliberately dumb: framing and integrity only. What the
//! payload *means* is the caller's business (BCSS snapshot bytes, campaign
//! accumulator state, a session journal, ...), named by the kind tag.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Container magic: "BC" + ChecKpoint.
const MAGIC: &[u8; 4] = b"BCCK";
/// Container format revision (framing only — payload versioning is per-kind).
const VERSION: u8 = 1;
/// Fixed header: magic(4) + version(1) + kind(1) + payload_len(8).
const HEADER_LEN: usize = 14;
/// Trailer: FNV-1a 64-bit checksum over the payload bytes.
const TRAILER_LEN: usize = 8;

/// What a checkpoint payload *is*. Stored in the container so a file can
/// never be rehydrated by the wrong subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// A bare `BCSS` simulation snapshot.
    Snapshot,
    /// Streaming campaign / grid-sweep accumulator state + cursor.
    Campaign,
    /// A `bc-serve` session journal (all open sessions).
    ServeJournal,
}

impl CheckpointKind {
    fn tag(self) -> u8 {
        match self {
            CheckpointKind::Snapshot => 1,
            CheckpointKind::Campaign => 2,
            CheckpointKind::ServeJournal => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(CheckpointKind::Snapshot),
            2 => Some(CheckpointKind::Campaign),
            3 => Some(CheckpointKind::ServeJournal),
            _ => None,
        }
    }
}

impl std::fmt::Display for CheckpointKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointKind::Snapshot => write!(f, "snapshot"),
            CheckpointKind::Campaign => write!(f, "campaign"),
            CheckpointKind::ServeJournal => write!(f, "serve-journal"),
        }
    }
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure (create, write, fsync, rename, read).
    Io(io::Error),
    /// File ended before the declared payload + checksum.
    Truncated,
    /// The `BCCK` magic is missing — not a checkpoint container.
    BadMagic,
    /// Container framing from a newer (or corrupt) revision.
    UnsupportedVersion(u8),
    /// The kind tag is not one we know.
    UnknownKind(u8),
    /// A valid container, but holding a different kind than requested.
    WrongKind {
        /// Kind the caller asked for.
        expected: CheckpointKind,
        /// Kind actually found in the file.
        found: CheckpointKind,
    },
    /// Payload bytes do not match the stored checksum — torn or bit-flipped.
    ChecksumMismatch,
    /// No generation in the store survived verification.
    NoUsableGeneration,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "missing BCCK magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint container version {v}")
            }
            CheckpointError::UnknownKind(t) => write!(f, "unknown checkpoint kind tag {t}"),
            CheckpointError::WrongKind { expected, found } => {
                write!(
                    f,
                    "checkpoint kind mismatch: expected {expected}, found {found}"
                )
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::NoUsableGeneration => {
                write!(f, "no usable checkpoint generation found")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a, 64-bit. Not cryptographic — it guards against torn writes and
/// random media corruption, which is exactly the threat model here, and it
/// costs nothing to vendor.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frame `payload` in a `BCCK` container.
pub fn encode_container(kind: CheckpointKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(kind.tag());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Unframe a `BCCK` container, verifying magic, version, kind, length, and
/// checksum. Total: every byte string maps to `Ok` or a typed error.
pub fn decode_container(kind: CheckpointKind, bytes: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    if bytes.len() < HEADER_LEN {
        // Too short to even hold the magic + header: classify precisely.
        if bytes.len() >= 4 && &bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        return Err(CheckpointError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(CheckpointError::UnsupportedVersion(bytes[4]));
    }
    let found = CheckpointKind::from_tag(bytes[5]).ok_or(CheckpointError::UnknownKind(bytes[5]))?;
    let len = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    // Guard the length against the actual byte count before any allocation:
    // a hostile 2^60 length must not OOM.
    let avail = (bytes.len() - HEADER_LEN) as u64;
    if len > avail || avail - len < TRAILER_LEN as u64 {
        return Err(CheckpointError::Truncated);
    }
    let len = len as usize;
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let stored = u64::from_le_bytes(
        bytes[HEADER_LEN + len..HEADER_LEN + len + TRAILER_LEN]
            .try_into()
            .unwrap(),
    );
    if fnv1a64(payload) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    // Kind is checked *after* integrity so a bit-flip in the kind byte
    // reports as corruption-adjacent (UnknownKind/WrongKind) only when the
    // rest of the frame is sound — keeps diagnostics honest.
    if found != kind {
        return Err(CheckpointError::WrongKind {
            expected: kind,
            found,
        });
    }
    Ok(payload.to_vec())
}

/// A generation that `load_latest` had to skip, and why.
#[derive(Debug)]
pub struct SkippedGeneration {
    /// Generation number parsed from the filename.
    pub generation: u64,
    /// The error that disqualified it.
    pub error: CheckpointError,
}

/// Result of a successful [`CheckpointStore::load_latest`].
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Generation number the payload came from.
    pub generation: u64,
    /// Verified payload bytes.
    pub payload: Vec<u8>,
    /// Newer generations that failed verification and were skipped.
    pub skipped: Vec<SkippedGeneration>,
}

/// A directory of generation-numbered checkpoint files for one producer.
///
/// Filenames are `{prefix}-{generation:016}.bcc`; the zero-padded decimal
/// keeps lexicographic order equal to numeric order. Writes are atomic,
/// reads fall back past corrupt generations.
pub struct CheckpointStore {
    dir: PathBuf,
    prefix: String,
    kind: CheckpointKind,
    /// How many generations to retain after a successful save (min 1).
    keep: usize,
    next_generation: u64,
}

impl CheckpointStore {
    /// Open (creating the directory if needed) a store for `kind` payloads.
    /// `keep` bounds retained generations; at least 2 is recommended so a
    /// corrupt newest generation still has somewhere to fall back to.
    pub fn open(
        dir: impl Into<PathBuf>,
        prefix: &str,
        kind: CheckpointKind,
        keep: usize,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = CheckpointStore {
            dir,
            prefix: prefix.to_string(),
            kind,
            keep: keep.max(1),
            next_generation: 0,
        };
        store.next_generation = store.generations()?.last().map(|&g| g + 1).unwrap_or(0);
        Ok(store)
    }

    /// Directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(&self, generation: u64) -> String {
        format!("{}-{generation:016}.bcc", self.prefix)
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(self.file_name(generation))
    }

    /// All generation numbers currently on disk, ascending.
    pub fn generations(&self) -> Result<Vec<u64>, CheckpointError> {
        let want_prefix = format!("{}-", self.prefix);
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&want_prefix) else {
                continue;
            };
            let Some(digits) = rest.strip_suffix(".bcc") else {
                continue;
            };
            if let Ok(g) = digits.parse::<u64>() {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Atomically persist `payload` as a new generation; returns its number.
    ///
    /// Protocol: write `{final}.tmp-{pid}` → `sync_all` → `rename` → fsync
    /// the directory. Older generations beyond `keep` are pruned afterwards
    /// (prune failures are ignored — stale files are harmless).
    pub fn save(&mut self, payload: &[u8]) -> Result<u64, CheckpointError> {
        let generation = self.next_generation;
        let bytes = encode_container(self.kind, payload);
        let final_path = self.path_for(generation);
        let tmp_path = self.dir.join(format!(
            "{}.tmp-{}",
            self.file_name(generation),
            std::process::id()
        ));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp_path, &final_path) {
            let _ = fs::remove_file(&tmp_path);
            return Err(e.into());
        }
        // Persist the rename itself: fsync the containing directory. Some
        // platforms refuse to open a directory for writing; opening
        // read-only is sufficient for fsync on Unix.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.next_generation = generation + 1;
        self.prune();
        Ok(generation)
    }

    fn prune(&self) {
        let Ok(gens) = self.generations() else { return };
        if gens.len() <= self.keep {
            return;
        }
        for &g in &gens[..gens.len() - self.keep] {
            let _ = fs::remove_file(self.path_for(g));
        }
    }

    /// Load one specific generation, fully verified.
    pub fn load_generation(&self, generation: u64) -> Result<Vec<u8>, CheckpointError> {
        let mut bytes = Vec::new();
        File::open(self.path_for(generation))?.read_to_end(&mut bytes)?;
        decode_container(self.kind, &bytes)
    }

    /// Load the newest generation that verifies, walking backwards past any
    /// torn/corrupt files. `Ok(None)` means the store is empty (a fresh
    /// start, not an error); `Err(NoUsableGeneration)` means files exist
    /// but none of them verified.
    pub fn load_latest(&self) -> Result<Option<LoadedCheckpoint>, CheckpointError> {
        let gens = self.generations()?;
        if gens.is_empty() {
            return Ok(None);
        }
        let mut skipped = Vec::new();
        for &g in gens.iter().rev() {
            match self.load_generation(g) {
                Ok(payload) => {
                    return Ok(Some(LoadedCheckpoint {
                        generation: g,
                        payload,
                        skipped,
                    }))
                }
                Err(error) => skipped.push(SkippedGeneration {
                    generation: g,
                    error,
                }),
            }
        }
        Err(CheckpointError::NoUsableGeneration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bc-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn container_roundtrip() {
        let payload = b"hello checkpoint".to_vec();
        let framed = encode_container(CheckpointKind::Campaign, &payload);
        assert_eq!(
            decode_container(CheckpointKind::Campaign, &framed).unwrap(),
            payload
        );
    }

    #[test]
    fn container_rejects_wrong_kind() {
        let framed = encode_container(CheckpointKind::Snapshot, b"x");
        match decode_container(CheckpointKind::Campaign, &framed) {
            Err(CheckpointError::WrongKind { expected, found }) => {
                assert_eq!(expected, CheckpointKind::Campaign);
                assert_eq!(found, CheckpointKind::Snapshot);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn container_detects_every_truncation() {
        let framed = encode_container(CheckpointKind::Campaign, b"some payload bytes");
        for cut in 0..framed.len() {
            assert!(
                decode_container(CheckpointKind::Campaign, &framed[..cut]).is_err(),
                "truncation at {cut} must not verify"
            );
        }
    }

    #[test]
    fn container_detects_every_single_bit_flip() {
        let framed = encode_container(CheckpointKind::Campaign, b"bit flip me");
        for i in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_container(CheckpointKind::Campaign, &bad).is_err(),
                    "bit flip at byte {i} bit {bit} must not verify"
                );
            }
        }
    }

    #[test]
    fn container_hostile_length_does_not_allocate() {
        // A giant declared length with few actual bytes must fail fast.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        bytes.push(CheckpointKind::Campaign.tag());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_container(CheckpointKind::Campaign, &bytes),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn store_saves_loads_and_prunes() {
        let dir = tmp_dir("basic");
        let mut store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 2).unwrap();
        for i in 0u8..5 {
            store.save(&[i; 4]).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![3, 4]);
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.generation, 4);
        assert_eq!(loaded.payload, vec![4u8; 4]);
        assert!(loaded.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_falls_back_past_corrupt_newest() {
        let dir = tmp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 4).unwrap();
        store.save(b"good generation zero").unwrap();
        let g1 = store.save(b"generation one, soon corrupt").unwrap();
        // Flip a payload bit in the newest file.
        let path = store.path_for(g1);
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 3] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.generation, 0);
        assert_eq!(loaded.payload, b"good generation zero");
        assert_eq!(loaded.skipped.len(), 1);
        assert!(matches!(
            loaded.skipped[0].error,
            CheckpointError::ChecksumMismatch
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_truncated_newest_falls_back() {
        let dir = tmp_dir("truncate");
        let mut store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 4).unwrap();
        store.save(b"old but intact").unwrap();
        let g1 = store.save(b"new but torn in half").unwrap();
        let path = store.path_for(g1);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.payload, b"old but intact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_all_corrupt_is_typed_error() {
        let dir = tmp_dir("allbad");
        let mut store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 4).unwrap();
        let g = store.save(b"only generation").unwrap();
        fs::write(store.path_for(g), b"BCCKgarbage").unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(CheckpointError::NoUsableGeneration)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_empty_is_none() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 2).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_resumes_generation_numbering() {
        let dir = tmp_dir("renumber");
        {
            let mut store =
                CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 8).unwrap();
            store.save(b"a").unwrap();
            store.save(b"b").unwrap();
        }
        let mut store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 8).unwrap();
        let g = store.save(b"c").unwrap();
        assert_eq!(g, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let dir = tmp_dir("stray");
        let mut store = CheckpointStore::open(&dir, "camp", CheckpointKind::Campaign, 2).unwrap();
        store.save(b"real").unwrap();
        // Simulate a crash mid-write: a stray temp file in the directory.
        fs::write(dir.join("camp-0000000000000009.bcc.tmp-1234"), b"junk").unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.payload, b"real");
        let _ = fs::remove_dir_all(&dir);
    }
}
