//! Kernel profiling hooks: per-event-kind counts and cycle histograms.
//!
//! Compiled in only under the `profile` cargo feature; without it every
//! hook is an empty inline function and the event loop is byte-for-byte
//! the unprofiled one (zero overhead when off — the same discipline as
//! the `NullSink` trace tap). With the feature on, collection is still
//! gated behind a runtime [`enable`] flag so a binary can time a clean
//! campaign first and run a separate instrumented pass for the
//! histogram: the disabled-but-compiled cost is one relaxed load and a
//! predictable branch per event.
//!
//! Cycles come from `rdtsc` on x86_64 (invariant TSC on every deployment
//! target) and from a monotonic nanosecond clock elsewhere; buckets are
//! log2, so the histogram answers "what order of magnitude does one
//! event of this kind cost, cascade included" rather than pretending to
//! nanosecond precision.

#[cfg(feature = "profile")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Event kinds tracked by the profiler, in histogram order. The
    /// indices match [`super::EventKind`]'s discriminants.
    pub const KIND_NAMES: [&str; 9] = [
        "compute_done",
        "send_done",
        "transfer_done",
        "compute_chain",
        "fault",
        "outage_end",
        "request_timeout",
        "reissue",
        "arrival",
    ];
    pub const KINDS: usize = KIND_NAMES.len();
    /// log2 cycle buckets: bucket `b` holds events costing `[2^b, 2^(b+1))`
    /// cycles; the last bucket absorbs everything larger.
    pub const BUCKETS: usize = 24;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static COUNTS: [AtomicU64; KINDS] = [const { AtomicU64::new(0) }; KINDS];
    #[allow(clippy::declare_interior_mutable_const)]
    static HIST: [[AtomicU64; BUCKETS]; KINDS] =
        [const { [const { AtomicU64::new(0) }; BUCKETS] }; KINDS];

    /// Turns collection on or off (off by default).
    pub fn enable(on: bool) {
        ENABLED.store(on, Ordering::SeqCst);
    }

    /// Zeroes all counters.
    pub fn reset() {
        for c in &COUNTS {
            c.store(0, Ordering::SeqCst);
        }
        for row in &HIST {
            for b in row {
                b.store(0, Ordering::SeqCst);
            }
        }
    }

    #[inline(always)]
    fn cycles() -> u64 {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            std::arch::x86_64::_rdtsc()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            use std::sync::OnceLock;
            use std::time::Instant;
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
        }
    }

    /// Timestamp at event-dispatch start; 0 when collection is disabled.
    #[inline(always)]
    pub fn start() -> u64 {
        if ENABLED.load(Ordering::Relaxed) {
            cycles()
        } else {
            0
        }
    }

    /// Records one handled event (handler + service cascade) of `kind`
    /// against the timestamp [`start`] returned.
    #[inline(always)]
    pub fn record(kind: usize, t0: u64) {
        if t0 == 0 {
            return;
        }
        let dt = cycles().saturating_sub(t0).max(1);
        let bucket = (63 - u64::leading_zeros(dt) as usize).min(BUCKETS - 1);
        COUNTS[kind].fetch_add(1, Ordering::Relaxed);
        HIST[kind][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A copyable snapshot of the collected profile.
    #[derive(Clone, Debug, Default)]
    pub struct KernelProfile {
        pub counts: Vec<(&'static str, u64)>,
        /// Per kind: (name, log2-bucket counts).
        pub histograms: Vec<(&'static str, [u64; BUCKETS])>,
    }

    /// Snapshots the current counters (kinds with zero events omitted).
    pub fn snapshot() -> KernelProfile {
        let mut p = KernelProfile::default();
        for k in 0..KINDS {
            let n = COUNTS[k].load(Ordering::SeqCst);
            if n == 0 {
                continue;
            }
            let mut row = [0u64; BUCKETS];
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = HIST[k][b].load(Ordering::SeqCst);
            }
            p.counts.push((KIND_NAMES[k], n));
            p.histograms.push((KIND_NAMES[k], row));
        }
        p
    }
}

#[cfg(feature = "profile")]
pub use imp::*;

// Feature off: every hook is a no-op the optimizer deletes entirely.
#[cfg(not(feature = "profile"))]
mod noop {
    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn enable(_on: bool) {}
    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn reset() {}
    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn start() -> u64 {
        0
    }
    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn record(_kind: usize, _t0: u64) {}
}

#[cfg(not(feature = "profile"))]
pub use noop::*;
