//! Mergeable run-statistics accumulators for streaming campaigns.
//!
//! A paper-scale sweep (10^5..10^6 trees) must not materialize a
//! `Vec<RunResult>` — at that scale the per-run summaries dominate
//! memory while every consumer only ever wants aggregate statistics.
//! [`RunStatsAccumulator`] folds the scalar facts of a [`RunResult`]
//! into exact integer counters that can be merged across shards.
//!
//! Design contract (relied on by the streaming campaign engine and its
//! determinism tests):
//!
//! * **Exactness** — every field is an integer sum (`u128`, overflow-free
//!   for any feasible campaign), `min`, or `max`. No floating-point
//!   state, so folding is exact.
//! * **Associativity + commutativity** — `merge` is associative and
//!   commutative, and folding runs one by one equals merging any
//!   grouping of sub-accumulators over the same runs. A sharded
//!   campaign therefore produces **bit-identical** aggregates to the
//!   materialized path at any thread count or shard size (shards are
//!   merged in shard order out of discipline, but the algebra does not
//!   even require it).
//! * **Identity** — `RunStatsAccumulator::default()` is the merge
//!   identity.
//!
//! Floating-point derived views (means, rates) are computed at read
//! time from the exact counters, never stored.

use crate::result::RunResult;

/// Exact, mergeable aggregate of many [`RunResult`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStatsAccumulator {
    /// Runs folded in.
    pub runs: u64,
    /// Total tasks completed.
    pub tasks: u128,
    /// Total discrete events processed.
    pub events: u128,
    /// Sum of per-run end times.
    pub end_time_sum: u128,
    /// Smallest per-run end time (`u64::MAX` when empty).
    pub end_time_min: u64,
    /// Largest per-run end time.
    pub end_time_max: u64,
    /// Total transfers preempted.
    pub preemptions: u128,
    /// Total task transfers started.
    pub transfers_started: u128,
    /// Total request messages sent.
    pub requests_sent: u128,
    /// Sum of per-run global max buffer-pool sizes.
    pub max_buffers_sum: u128,
    /// Largest buffer pool seen in any run.
    pub max_buffers_max: u32,
    /// Sum over runs and nodes of processor busy time.
    pub busy_compute_sum: u128,
    /// Sum over runs and nodes of outbound-link busy time.
    pub busy_link_sum: u128,
    /// Total faults injected (0 without a fault plan).
    pub faults_injected: u128,
    /// Total tasks destroyed by faults.
    pub tasks_lost: u128,
    /// Total lost tasks reissued by the repository.
    pub tasks_reissued: u128,
    /// Total request-timeout retries.
    pub retries: u128,
    /// Total crash faults applied.
    pub crashes: u128,
}

impl Default for RunStatsAccumulator {
    fn default() -> Self {
        RunStatsAccumulator {
            runs: 0,
            tasks: 0,
            events: 0,
            end_time_sum: 0,
            end_time_min: u64::MAX,
            end_time_max: 0,
            preemptions: 0,
            transfers_started: 0,
            requests_sent: 0,
            max_buffers_sum: 0,
            max_buffers_max: 0,
            busy_compute_sum: 0,
            busy_link_sum: 0,
            faults_injected: 0,
            tasks_lost: 0,
            tasks_reissued: 0,
            retries: 0,
            crashes: 0,
        }
    }
}

impl RunStatsAccumulator {
    /// The merge identity (an accumulator over zero runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no run has been folded in.
    pub fn is_empty(&self) -> bool {
        self.runs == 0
    }

    /// Folds one run's scalar facts in.
    pub fn fold(&mut self, r: &RunResult) {
        self.runs += 1;
        self.tasks += r.tasks_completed() as u128;
        self.events += r.events_processed as u128;
        self.end_time_sum += r.end_time as u128;
        self.end_time_min = self.end_time_min.min(r.end_time);
        self.end_time_max = self.end_time_max.max(r.end_time);
        self.preemptions += r.preemptions as u128;
        self.transfers_started += r.transfers_started as u128;
        self.requests_sent += r.requests_sent as u128;
        let mb = r.max_buffers();
        self.max_buffers_sum += mb as u128;
        self.max_buffers_max = self.max_buffers_max.max(mb);
        self.busy_compute_sum += r
            .busy_compute_per_node
            .iter()
            .map(|&b| b as u128)
            .sum::<u128>();
        self.busy_link_sum += r
            .busy_link_per_node
            .iter()
            .map(|&b| b as u128)
            .sum::<u128>();
        self.faults_injected += r.faults.faults_injected as u128;
        self.tasks_lost += r.faults.tasks_lost as u128;
        self.tasks_reissued += r.faults.tasks_reissued as u128;
        self.retries += r.faults.retries as u128;
        self.crashes += r.faults.crashes as u128;
    }

    /// Merges another accumulator in (exact; associative and
    /// commutative; `default()` is the identity).
    pub fn merge(&mut self, other: &Self) {
        self.runs += other.runs;
        self.tasks += other.tasks;
        self.events += other.events;
        self.end_time_sum += other.end_time_sum;
        self.end_time_min = self.end_time_min.min(other.end_time_min);
        self.end_time_max = self.end_time_max.max(other.end_time_max);
        self.preemptions += other.preemptions;
        self.transfers_started += other.transfers_started;
        self.requests_sent += other.requests_sent;
        self.max_buffers_sum += other.max_buffers_sum;
        self.max_buffers_max = self.max_buffers_max.max(other.max_buffers_max);
        self.busy_compute_sum += other.busy_compute_sum;
        self.busy_link_sum += other.busy_link_sum;
        self.faults_injected += other.faults_injected;
        self.tasks_lost += other.tasks_lost;
        self.tasks_reissued += other.tasks_reissued;
        self.retries += other.retries;
        self.crashes += other.crashes;
    }

    /// Appends the accumulator's canonical fixed-width little-endian
    /// byte form (declaration order) to `out`. Used by the durable
    /// campaign checkpoints; integrity is the container's job
    /// ([`crate::durability`]), so the form carries no checksum of its
    /// own.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.runs.to_le_bytes());
        out.extend_from_slice(&self.tasks.to_le_bytes());
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.end_time_sum.to_le_bytes());
        out.extend_from_slice(&self.end_time_min.to_le_bytes());
        out.extend_from_slice(&self.end_time_max.to_le_bytes());
        out.extend_from_slice(&self.preemptions.to_le_bytes());
        out.extend_from_slice(&self.transfers_started.to_le_bytes());
        out.extend_from_slice(&self.requests_sent.to_le_bytes());
        out.extend_from_slice(&self.max_buffers_sum.to_le_bytes());
        out.extend_from_slice(&self.max_buffers_max.to_le_bytes());
        out.extend_from_slice(&self.busy_compute_sum.to_le_bytes());
        out.extend_from_slice(&self.busy_link_sum.to_le_bytes());
        out.extend_from_slice(&self.faults_injected.to_le_bytes());
        out.extend_from_slice(&self.tasks_lost.to_le_bytes());
        out.extend_from_slice(&self.tasks_reissued.to_le_bytes());
        out.extend_from_slice(&self.retries.to_le_bytes());
        out.extend_from_slice(&self.crashes.to_le_bytes());
    }

    /// Decodes one accumulator from the front of `input`, advancing it
    /// past the consumed bytes. `None` on truncation.
    pub fn decode_from(input: &mut &[u8]) -> Option<Self> {
        fn u64le(input: &mut &[u8]) -> Option<u64> {
            let (head, rest) = input.split_at_checked(8)?;
            *input = rest;
            Some(u64::from_le_bytes(head.try_into().unwrap()))
        }
        fn u128le(input: &mut &[u8]) -> Option<u128> {
            let (head, rest) = input.split_at_checked(16)?;
            *input = rest;
            Some(u128::from_le_bytes(head.try_into().unwrap()))
        }
        fn u32le(input: &mut &[u8]) -> Option<u32> {
            let (head, rest) = input.split_at_checked(4)?;
            *input = rest;
            Some(u32::from_le_bytes(head.try_into().unwrap()))
        }
        Some(RunStatsAccumulator {
            runs: u64le(input)?,
            tasks: u128le(input)?,
            events: u128le(input)?,
            end_time_sum: u128le(input)?,
            end_time_min: u64le(input)?,
            end_time_max: u64le(input)?,
            preemptions: u128le(input)?,
            transfers_started: u128le(input)?,
            requests_sent: u128le(input)?,
            max_buffers_sum: u128le(input)?,
            max_buffers_max: u32le(input)?,
            busy_compute_sum: u128le(input)?,
            busy_link_sum: u128le(input)?,
            faults_injected: u128le(input)?,
            tasks_lost: u128le(input)?,
            tasks_reissued: u128le(input)?,
            retries: u128le(input)?,
            crashes: u128le(input)?,
        })
    }

    /// Mean end time across runs (0 when empty).
    pub fn mean_end_time(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.end_time_sum as f64 / self.runs as f64
    }

    /// Mean events per run (0 when empty).
    pub fn mean_events(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.events as f64 / self.runs as f64
    }

    /// Mean of the per-run global max buffer-pool sizes (0 when empty).
    pub fn mean_max_buffers(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.max_buffers_sum as f64 / self.runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::FaultStats;

    fn run(end: u64, events: u64, tasks: usize) -> RunResult {
        RunResult {
            completion_times: (1..=tasks as u64).collect(),
            end_time: end,
            tasks_per_node: vec![tasks as u64, 0],
            max_buffers_per_node: vec![0, (end % 7) as u32],
            final_buffers_per_node: vec![0, 0],
            peak_held_per_node: vec![0, 1],
            busy_compute_per_node: vec![end / 2, end / 3],
            busy_link_per_node: vec![end / 4, 0],
            preemptions_per_node: vec![1, 0],
            checkpoint_max_buffers: Vec::new(),
            events_processed: events,
            preemptions: 1,
            transfers_started: 2,
            requests_sent: 3,
            faults: FaultStats::default(),
            arrivals: crate::result::ArrivalStats::default(),
        }
    }

    #[test]
    fn default_is_merge_identity() {
        let mut acc = RunStatsAccumulator::new();
        acc.fold(&run(10, 100, 4));
        let snapshot = acc.clone();
        acc.merge(&RunStatsAccumulator::default());
        assert_eq!(acc, snapshot);
        let mut id = RunStatsAccumulator::default();
        id.merge(&snapshot);
        assert_eq!(id, snapshot);
    }

    #[test]
    fn fold_equals_any_merge_grouping() {
        let runs: Vec<RunResult> = (1..=9).map(|i| run(i * 10, i * 100, i as usize)).collect();
        let mut whole = RunStatsAccumulator::new();
        for r in &runs {
            whole.fold(r);
        }
        // Split 3/6, merge — and split 6/3 merged the other way round.
        for split in [3usize, 6] {
            let (a, b) = runs.split_at(split);
            let mut left = RunStatsAccumulator::new();
            a.iter().for_each(|r| left.fold(r));
            let mut right = RunStatsAccumulator::new();
            b.iter().for_each(|r| right.fold(r));
            let mut fwd = left.clone();
            fwd.merge(&right);
            assert_eq!(fwd, whole);
            let mut rev = right.clone();
            rev.merge(&left);
            assert_eq!(rev, whole, "merge must be commutative");
        }
    }

    #[test]
    fn codec_roundtrips_and_rejects_truncation() {
        let mut acc = RunStatsAccumulator::new();
        for i in 1..=5u64 {
            acc.fold(&run(i * 7, i * 31, i as usize));
        }
        let mut bytes = Vec::new();
        acc.encode_into(&mut bytes);
        let mut input = bytes.as_slice();
        let decoded = RunStatsAccumulator::decode_from(&mut input).unwrap();
        assert_eq!(decoded, acc);
        assert!(input.is_empty());
        for cut in 0..bytes.len() {
            let mut short = &bytes[..cut];
            assert!(RunStatsAccumulator::decode_from(&mut short).is_none());
        }
    }

    #[test]
    fn min_max_track_extremes() {
        let mut acc = RunStatsAccumulator::new();
        acc.fold(&run(50, 1, 1));
        acc.fold(&run(10, 1, 1));
        acc.fold(&run(90, 1, 1));
        assert_eq!(acc.end_time_min, 10);
        assert_eq!(acc.end_time_max, 90);
        assert_eq!(acc.runs, 3);
        assert!((acc.mean_end_time() - 50.0).abs() < 1e-12);
    }
}
