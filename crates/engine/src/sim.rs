//! The event-driven protocol simulator.
//!
//! One [`Simulation`] runs one application (a finite count of identical,
//! independent tasks) over one platform tree under one protocol
//! configuration. The base model of §2.1 is enforced structurally: each
//! node owns three independent resources — a processor (one task at a
//! time), an inbound link from its parent (the parent serializes sends,
//! so at most one task is ever inbound), and an outbound link shared by
//! its children (one active transmission at a time).
//!
//! ## Protocol flow (both variants)
//!
//! * A node keeps one outstanding request to its parent per uncovered
//!   empty buffer; requests are instantaneous control messages.
//! * Buffers empty at compute *start* and send *start* (§3.1), which is
//!   also the moment the freed buffer is re-requested.
//! * **Non-interruptible**: the outbound link serves one transfer to
//!   completion; buffer growth follows the three §3.1 rules.
//! * **Interruptible**: a delegated task moves into the destination
//!   child's transfer slot; the link always transmits the slot of the
//!   highest-priority occupied child, preempting (shelving) lower-priority
//!   partial transfers, which resume where they left off (§3.2).
//!
//! ## Wind-down and accounting
//!
//! The root dispenses exactly `total_tasks` tasks; the run ends at the
//! `total_tasks`-th completion. A task "completes" when its computation
//! finishes (the edge weight folds the result's return trip into the
//! downward transfer; see DESIGN.md).
//!
//! ## Workspace reuse (campaign engine)
//!
//! All of a simulation's runtime containers — agenda, per-node state,
//! topology arrays, scratch buffers — live in a [`SimWorkspace`]. A
//! campaign worker constructs each simulation
//! [with the same workspace](Simulation::with_workspace) and takes it
//! back from [`Simulation::run_reusing`], so after the first few runs
//! warm the capacities, subsequent runs perform **no steady-state heap
//! allocation at all** (verified by the `alloc_free` integration test).

use crate::config::{ChangeKind, FaultInjection, Protocol, SelectorKind, SimConfig};
use crate::result::RunResult;
use bc_core::{BufferLedger, BufferPolicy, ChildInfo, ChildSelector, GrowthEvent, LatencyObserver};
use bc_platform::{NodeId, Tree};
use bc_simcore::{Agenda, EventHandle, NullSink, Time, TraceEvent, TraceSink};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // the Done suffix is the domain vocabulary
pub(crate) enum Event {
    ComputeDone {
        node: usize,
    },
    /// Non-interruptible send completion.
    SendDone {
        node: usize,
    },
    /// Interruptible active-transfer completion.
    TransferDone {
        node: usize,
    },
}

/// Non-IC: the single in-flight outbound transfer.
pub(crate) struct Sending {
    pub(crate) child_pos: usize,
    pub(crate) started_at: Time,
    pub(crate) handle: EventHandle,
}

/// IC: a task parked in (or transmitting from) a per-child transfer slot.
pub(crate) struct SlotTransfer {
    /// Transmission work left, in timesteps.
    pub(crate) remaining: u64,
    /// Total transmission work (the edge weight at delegation time) —
    /// reported to the latency observer on completion.
    pub(crate) total: u64,
    /// Whether this transfer has ever transmitted (distinguishes a first
    /// activation from a resume when a preemption landed at elapsed 0).
    pub(crate) started: bool,
}

/// IC: the currently transmitting slot.
pub(crate) struct ActiveTransfer {
    pub(crate) child_pos: usize,
    pub(crate) started_at: Time,
    pub(crate) remaining_at_start: u64,
    pub(crate) handle: EventHandle,
}

pub(crate) struct NodeRt {
    /// Buffer ledger; `None` at the root (the repository draws from the
    /// task source directly).
    pub(crate) ledger: Option<BufferLedger>,
    pub(crate) observer: LatencyObserver,
    pub(crate) selector: ChildSelector,
    /// Outstanding requests per child position.
    pub(crate) pending_requests: Vec<u32>,
    /// Start time of the in-progress computation, if any.
    pub(crate) computing_since: Option<Time>,
    pub(crate) sending: Option<Sending>,
    pub(crate) slots: Vec<Option<SlotTransfer>>,
    pub(crate) active: Option<ActiveTransfer>,
    pub(crate) tasks_computed: u64,
    /// Preemptions performed on this node's outbound link.
    pub(crate) preemptions: u64,
    /// True once the node has left the overlay (dynamic-topology
    /// extension); departed nodes ignore events and are never selected.
    pub(crate) departed: bool,
    /// Accumulated processor busy time.
    pub(crate) busy_compute: u64,
    /// Accumulated outbound-link busy (transmitting) time.
    pub(crate) busy_link: u64,
    /// Last time a growth rule fired (drives the optional decay
    /// extension).
    pub(crate) last_pressure: Time,
}

fn make_selector(kind: SelectorKind) -> ChildSelector {
    match kind {
        SelectorKind::BandwidthCentric => ChildSelector::BandwidthCentric,
        SelectorKind::ComputeCentric => ChildSelector::ComputeCentric,
        SelectorKind::RoundRobin => ChildSelector::round_robin(),
    }
}

/// The buffer policy nodes are actually built with: the configured one,
/// unless the `FbOffByOne` checker-validation fault inflates it.
fn effective_buffers(cfg: &SimConfig) -> BufferPolicy {
    match cfg.fault {
        Some(FaultInjection::FbOffByOne) => match cfg.buffers {
            BufferPolicy::Fixed(k) => BufferPolicy::Fixed(k + 1),
            BufferPolicy::Growable {
                initial,
                cap,
                gate,
                decay_after,
            } => BufferPolicy::Growable {
                initial: initial + 1,
                cap,
                gate,
                decay_after,
            },
        },
        _ => cfg.buffers,
    }
}

impl NodeRt {
    fn fresh(index: usize, kids: usize, cfg: &SimConfig) -> NodeRt {
        NodeRt {
            ledger: (index != 0).then(|| BufferLedger::new(effective_buffers(cfg))),
            observer: LatencyObserver::new(cfg.observer, kids),
            selector: make_selector(cfg.selector),
            pending_requests: vec![0; kids],
            computing_since: None,
            sending: None,
            slots: (0..kids).map(|_| None).collect(),
            active: None,
            tasks_computed: 0,
            preemptions: 0,
            departed: false,
            busy_compute: 0,
            busy_link: 0,
            last_pressure: 0,
        }
    }

    /// Reinitializes this node for a new run, keeping the per-child
    /// vectors' capacity.
    fn reset(&mut self, index: usize, kids: usize, cfg: &SimConfig) {
        self.ledger = (index != 0).then(|| BufferLedger::new(effective_buffers(cfg)));
        self.observer.reset(cfg.observer, kids);
        self.selector = make_selector(cfg.selector);
        self.pending_requests.clear();
        self.pending_requests.resize(kids, 0);
        self.computing_since = None;
        self.sending = None;
        self.slots.clear();
        self.slots.resize_with(kids, || None);
        self.active = None;
        self.tasks_computed = 0;
        self.preemptions = 0;
        self.departed = false;
        self.busy_compute = 0;
        self.busy_link = 0;
        self.last_pressure = 0;
    }
}

/// Reusable simulation runtime state: every container a run needs, kept
/// between runs with capacity intact.
///
/// One workspace serves one worker thread: construct simulations with
/// [`Simulation::with_workspace`], get the workspace back from
/// [`Simulation::run_reusing`], and the steady-state event loop stops
/// allocating after the first few runs warm the arenas.
#[derive(Default)]
pub struct SimWorkspace {
    pub(crate) agenda: Agenda<Event>,
    pub(crate) nodes: Vec<NodeRt>,
    pub(crate) parent_of: Vec<Option<usize>>,
    /// Position of node `i` within its parent's child list.
    pub(crate) child_pos: Vec<usize>,
    pub(crate) children: Vec<Vec<usize>>,
    pub(crate) service_queue: VecDeque<usize>,
    pub(crate) queued: Vec<bool>,
    pub(crate) completion_times: Vec<Time>,
    pub(crate) checkpoint_records: Vec<(u64, u32)>,
    /// Scratch for candidate lists (child selection / link reconciling);
    /// taken and restored around each use so the event loop never
    /// allocates.
    pub(crate) candidates: Vec<ChildInfo>,
}

impl SimWorkspace {
    /// An empty workspace (allocations happen lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: run one simulation in this workspace. Equivalent to
    /// `Simulation::with_workspace` + `run_reusing`, with the workspace
    /// automatically returned to `self`.
    pub fn run(&mut self, tree: Tree, cfg: SimConfig) -> RunResult {
        let ws = std::mem::take(self);
        let (result, ws) = Simulation::with_workspace(tree, cfg, ws).run_reusing();
        *self = ws;
        result
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// Generic over its [`TraceSink`]: the default [`NullSink`] has
/// `ENABLED = false`, so every instrumentation site monomorphizes to
/// nothing and the untraced event loop is byte-for-byte the pre-tracing
/// one (the `alloc_free` test proves it stays allocation-free). Pass a
/// real sink via [`Simulation::traced`] to capture the full event
/// stream.
pub struct Simulation<S: TraceSink = NullSink> {
    pub(crate) tree: Tree,
    pub(crate) cfg: SimConfig,
    pub(crate) ws: SimWorkspace,
    pub(crate) sink: S,
    /// Tasks the root has not yet dispensed (to itself or a child).
    pub(crate) remaining: u64,
    pub(crate) completed: u64,
    next_checkpoint: usize,
    next_change: usize,
    pub(crate) events_processed: u64,
    /// Preemptions performed (interruptible protocol only).
    pub(crate) preemptions: u64,
    /// Task transfers started (both protocols).
    pub(crate) transfers_started: u64,
    /// Request messages sent upward.
    pub(crate) requests_sent: u64,
    started: bool,
    pub(crate) finished: bool,
    /// Checked mode: last event time seen by the checker (monotonicity).
    pub(crate) check_last_now: Time,
    /// Checked mode: events since the last full invariant sweep.
    pub(crate) events_since_sweep: u32,
    /// Fault injection only: deliveries counted toward `LeakTask`.
    faulty_deliveries: u64,
}

impl Simulation {
    /// Builds a simulation with a fresh workspace. Panics on invalid
    /// configuration or tree (programming errors; experiment inputs are
    /// validated upstream).
    pub fn new(tree: Tree, cfg: SimConfig) -> Self {
        Self::with_workspace(tree, cfg, SimWorkspace::new())
    }

    /// Builds a simulation reusing `ws`'s allocations (returned by
    /// [`Simulation::run_reusing`]). Any state from a previous run is
    /// cleared; capacities are kept.
    pub fn with_workspace(tree: Tree, cfg: SimConfig, ws: SimWorkspace) -> Self {
        Simulation::traced(tree, cfg, ws, NullSink)
    }
}

impl<S: TraceSink> Simulation<S> {
    /// Builds a simulation whose event loop streams every protocol event
    /// into `sink` (see [`TraceEvent`] for the taxonomy). Run it with
    /// [`Simulation::run_traced`] to get the sink back.
    pub fn traced(tree: Tree, cfg: SimConfig, mut ws: SimWorkspace, sink: S) -> Simulation<S> {
        cfg.validate().expect("invalid SimConfig");
        tree.validate().expect("invalid Tree");
        let n = tree.len();

        ws.agenda.reset();
        ws.service_queue.clear();
        ws.queued.clear();
        ws.queued.resize(n, false);
        ws.completion_times.clear();
        ws.completion_times.reserve(cfg.total_tasks as usize);
        ws.checkpoint_records.clear();
        ws.checkpoint_records.reserve(cfg.checkpoints.len());
        ws.candidates.clear();

        ws.parent_of.clear();
        ws.parent_of.resize(n, None);
        ws.child_pos.clear();
        ws.child_pos.resize(n, 0);
        ws.children.truncate(n);
        for c in &mut ws.children {
            c.clear();
        }
        ws.children.resize_with(n, Vec::new);
        for id in tree.ids() {
            for (pos, &ch) in tree.children(id).iter().enumerate() {
                ws.parent_of[ch.index()] = Some(id.index());
                ws.child_pos[ch.index()] = pos;
                ws.children[id.index()].push(ch.index());
            }
        }

        // Rebuild per-node runtime state in place where possible.
        let reusable = ws.nodes.len().min(n);
        for i in 0..reusable {
            let kids = ws.children[i].len();
            ws.nodes[i].reset(i, kids, &cfg);
        }
        for i in reusable..n {
            let kids = ws.children[i].len();
            ws.nodes.push(NodeRt::fresh(i, kids, &cfg));
        }
        ws.nodes.truncate(n);

        let remaining = cfg.total_tasks;
        Simulation {
            tree,
            cfg,
            ws,
            sink,
            remaining,
            completed: 0,
            next_checkpoint: 0,
            next_change: 0,
            events_processed: 0,
            preemptions: 0,
            transfers_started: 0,
            requests_sent: 0,
            started: false,
            finished: false,
            check_last_now: 0,
            events_since_sweep: 0,
            faulty_deliveries: 0,
        }
    }

    /// Start-up: every node issues its initial requests; the cascade
    /// reaches the root, which begins computing and sending. Idempotent;
    /// [`Simulation::step`] calls it automatically.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.ws.nodes.len() {
            self.enqueue(i);
        }
        self.drain();
    }

    /// Processes exactly one event (plus the resulting service cascade).
    /// Returns `false` once the final task has completed. Panics on
    /// deadlock (empty agenda before the last completion) or event-budget
    /// exhaustion, like [`Simulation::run`].
    pub fn step(&mut self) -> bool {
        self.start();
        if self.finished {
            return false;
        }
        let Some((_, ev)) = self.ws.agenda.next() else {
            panic!(
                "simulation deadlock: {}/{} tasks completed with an empty agenda",
                self.completed, self.cfg.total_tasks
            );
        };
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.cfg.max_events,
            "event budget exceeded ({}); runaway simulation",
            self.cfg.max_events
        );
        self.handle(ev);
        self.drain();
        if self.cfg.checked {
            self.checked_tick();
        }
        !self.finished
    }

    /// Runs to the final task completion and returns the trace.
    pub fn run(self) -> RunResult {
        self.run_reusing().0
    }

    /// Runs to completion, returning the trace *and* the workspace so
    /// the next simulation can reuse its allocations.
    pub fn run_reusing(self) -> (RunResult, SimWorkspace) {
        let (result, ws, _sink) = self.run_traced();
        (result, ws)
    }

    /// Runs to completion, returning the result, the workspace, and the
    /// trace sink (with whatever it recorded).
    pub fn run_traced(mut self) -> (RunResult, SimWorkspace, S) {
        self.start();
        while self.step() {}
        self.into_result()
    }

    /// The simulator's one trace tap: every instrumentation site funnels
    /// through here, stamped with the agenda clock. With the default
    /// [`NullSink`] the branch is statically false and the whole call —
    /// including the caller's argument computation, which is also guarded
    /// on `S::ENABLED` — compiles away.
    #[inline(always)]
    fn emit(&mut self, event: TraceEvent) {
        if S::ENABLED {
            self.sink.record(self.ws.agenda.now(), event);
        }
    }

    fn into_result(mut self) -> (RunResult, SimWorkspace, S) {
        let completion_times = std::mem::take(&mut self.ws.completion_times);
        let checkpoint_records = std::mem::take(&mut self.ws.checkpoint_records);
        let end_time = completion_times.last().copied().unwrap_or(0);
        let result = RunResult {
            end_time,
            tasks_per_node: self.ws.nodes.iter().map(|n| n.tasks_computed).collect(),
            max_buffers_per_node: self
                .ws
                .nodes
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.max_capacity()))
                .collect(),
            final_buffers_per_node: self
                .ws
                .nodes
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.capacity()))
                .collect(),
            peak_held_per_node: self
                .ws
                .nodes
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.peak_held()))
                .collect(),
            busy_compute_per_node: self.ws.nodes.iter().map(|n| n.busy_compute).collect(),
            busy_link_per_node: self.ws.nodes.iter().map(|n| n.busy_link).collect(),
            preemptions_per_node: self.ws.nodes.iter().map(|n| n.preemptions).collect(),
            checkpoint_max_buffers: checkpoint_records,
            events_processed: self.events_processed,
            preemptions: self.preemptions,
            transfers_started: self.transfers_started,
            requests_sent: self.requests_sent,
            completion_times,
        };
        (result, self.ws, self.sink)
    }

    // ----- event handling -------------------------------------------------

    fn handle(&mut self, ev: Event) {
        let node = match ev {
            Event::ComputeDone { node }
            | Event::SendDone { node }
            | Event::TransferDone { node } => node,
        };
        if self.ws.nodes[node].departed {
            // Stale event of a node that left; its task was already
            // reclaimed by the repository.
            return;
        }
        match ev {
            Event::ComputeDone { node } => self.on_compute_done(node),
            Event::SendDone { node } => self.on_send_done(node),
            Event::TransferDone { node } => self.on_transfer_done(node),
        }
    }

    fn on_compute_done(&mut self, i: usize) {
        let started = self.ws.nodes[i]
            .computing_since
            .take()
            .expect("ComputeDone on idle processor");
        self.ws.nodes[i].busy_compute += self.ws.agenda.now() - started;
        self.ws.nodes[i].tasks_computed += 1;
        self.emit(TraceEvent::ComputeFinish { node: i as u32 });
        self.record_completion();
        if self.finished {
            return;
        }
        // §3.1 growth rule 3: computation completed with all buffers empty.
        let now = self.ws.agenda.now();
        if let Some(ledger) = &mut self.ws.nodes[i].ledger {
            if ledger.try_grow(GrowthEvent::ComputeCompleted, true) {
                self.ws.nodes[i].last_pressure = now;
            }
        }
        self.enqueue(i);
    }

    fn on_send_done(&mut self, i: usize) {
        let s = self.ws.nodes[i]
            .sending
            .take()
            .expect("SendDone without in-flight send");
        let now = self.ws.agenda.now();
        let duration = now - s.started_at;
        self.ws.nodes[i].busy_link += duration;
        self.ws.nodes[i].observer.observe(s.child_pos, duration);
        let child = self.ws.children[i][s.child_pos];
        self.emit(TraceEvent::TransferComplete {
            node: i as u32,
            child: child as u32,
            work: duration,
        });
        self.deliver(child);
        // §3.1 growth rule 2: send completed, buffers empty, child request
        // outstanding.
        let pressure = self.has_child_requests(i);
        if let Some(ledger) = &mut self.ws.nodes[i].ledger {
            if ledger.try_grow(GrowthEvent::SendCompleted, pressure) {
                self.ws.nodes[i].last_pressure = now;
            }
        }
        self.enqueue(i);
    }

    fn on_transfer_done(&mut self, i: usize) {
        let a = self.ws.nodes[i]
            .active
            .take()
            .expect("TransferDone without active transfer");
        self.ws.nodes[i].busy_link += self.ws.agenda.now() - a.started_at;
        // The event firing means the remaining work ran to zero.
        self.ws.nodes[i].slots[a.child_pos]
            .as_mut()
            .expect("active transfer without slot")
            .remaining = 0;
        self.finish_slot(i, a.child_pos);
        // Growth rule 2 applies to completed communications in general.
        let pressure = self.has_child_requests(i);
        let now = self.ws.agenda.now();
        if let Some(ledger) = &mut self.ws.nodes[i].ledger {
            if ledger.try_grow(GrowthEvent::SendCompleted, pressure) {
                self.ws.nodes[i].last_pressure = now;
            }
        }
        self.reconcile_link(i);
        self.enqueue(i);
    }

    /// Completes the (already inactive) transfer in `child_pos`'s slot:
    /// records the observation and delivers the task.
    fn finish_slot(&mut self, i: usize, child_pos: usize) {
        let t = self.ws.nodes[i].slots[child_pos]
            .take()
            .expect("completing an empty slot");
        debug_assert_eq!(
            t.remaining, 0,
            "transfer completed with {} timesteps of work left",
            t.remaining
        );
        self.ws.nodes[i].observer.observe(child_pos, t.total);
        let child = self.ws.children[i][child_pos];
        self.emit(TraceEvent::TransferComplete {
            node: i as u32,
            child: child as u32,
            work: t.total,
        });
        self.deliver(child);
    }

    fn deliver(&mut self, child: usize) {
        let ledger = self.ws.nodes[child]
            .ledger
            .as_mut()
            .expect("delivery to the root");
        ledger.task_arrived();
        if S::ENABLED {
            let (held, capacity) = (ledger.held(), ledger.capacity());
            self.emit(TraceEvent::BufferAcquire {
                node: child as u32,
                held,
                capacity,
            });
        }
        let ledger = self.ws.nodes[child]
            .ledger
            .as_mut()
            .expect("delivery to the root");
        if let Some(FaultInjection::LeakTask { every }) = self.cfg.fault {
            self.faulty_deliveries += 1;
            if self.faulty_deliveries.is_multiple_of(every) {
                // The injected bug: the task vanishes from the buffer
                // without being computed or forwarded.
                ledger.take_task();
            }
        }
        self.enqueue(child);
    }

    fn record_completion(&mut self) {
        let now = self.ws.agenda.now();
        self.completed += 1;
        self.ws.completion_times.push(now);
        while self.next_checkpoint < self.cfg.checkpoints.len()
            && self.completed >= self.cfg.checkpoints[self.next_checkpoint]
        {
            let max = self
                .ws
                .nodes
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.max_capacity()))
                .max()
                .unwrap_or(0);
            self.ws
                .checkpoint_records
                .push((self.cfg.checkpoints[self.next_checkpoint], max));
            self.next_checkpoint += 1;
        }
        while self.next_change < self.cfg.changes.len()
            && self.cfg.changes[self.next_change].after_tasks <= self.completed
        {
            let ch = self.cfg.changes[self.next_change];
            self.next_change += 1;
            match ch.kind {
                ChangeKind::CommTime(c) => self.tree.set_comm_time(ch.node, c),
                ChangeKind::ComputeTime(w) => self.tree.set_compute_time(ch.node, w),
                ChangeKind::Join { comm, compute } => {
                    self.apply_join(ch.node, comm, compute);
                    continue;
                }
                ChangeKind::Leave => {
                    self.apply_leave(ch.node);
                    continue;
                }
            }
            // Re-examine the neighborhood under the new weights. In-flight
            // work keeps its old duration (a transfer/computation started
            // under the old conditions finishes under them).
            self.enqueue(ch.node.index());
            if let Some(p) = self.ws.parent_of[ch.node.index()] {
                self.enqueue(p);
            }
        }
        if self.completed >= self.cfg.total_tasks {
            self.finished = true;
        }
    }

    // ----- dynamic topology (extension) -------------------------------------

    /// A new node joins under `parent` — §3's scalability property in
    /// action: the parent only gains one more child to prioritize; no
    /// other node learns anything.
    fn apply_join(&mut self, parent: NodeId, comm: u64, compute: u64) {
        let p = parent.index();
        assert!(
            p < self.ws.nodes.len(),
            "join under unknown parent {parent}"
        );
        if self.ws.nodes[p].departed {
            // The contact node left before the newcomer arrived; in a
            // real overlay the join simply fails.
            return;
        }
        let id = self.tree.add_child(parent, comm, compute);
        let i = id.index();
        debug_assert_eq!(i, self.ws.nodes.len());
        self.ws.parent_of.push(Some(p));
        self.ws.child_pos.push(self.ws.children[p].len());
        self.ws.children[p].push(i);
        self.ws.children.push(Vec::new());
        let mut node = NodeRt::fresh(i, 0, &self.cfg);
        node.last_pressure = self.ws.agenda.now();
        self.ws.nodes.push(node);
        self.emit(TraceEvent::NodeJoin {
            node: i as u32,
            parent: p as u32,
        });
        // Parent-side per-child state.
        self.ws.nodes[p].pending_requests.push(0);
        self.ws.nodes[p].slots.push(None);
        self.ws.nodes[p].observer.add_child();
        self.ws.queued.push(false);
        // The newcomer requests its initial tasks; the parent re-evaluates.
        self.enqueue(i);
        self.enqueue(p);
    }

    /// The subtree rooted at `node` departs. Every task it holds — in
    /// buffers, on a processor, or in flight toward it — returns to the
    /// repository for re-dispatch.
    fn apply_leave(&mut self, node: NodeId) {
        let d0 = node.index();
        assert!(d0 < self.ws.nodes.len(), "leave of unknown node {node}");
        assert!(d0 != 0, "the repository cannot leave");
        if self.ws.nodes[d0].departed {
            return; // already gone (idempotent)
        }
        // Reclaim from the boundary edge: the still-present parent may be
        // mid-transfer toward the departing subtree root.
        let mut reclaimed: u64 = 0;
        let p = self.ws.parent_of[d0].expect("non-root has parent");
        let pos = self.ws.child_pos[d0];
        let denied = self.ws.nodes[p].pending_requests[pos];
        self.ws.nodes[p].pending_requests[pos] = 0;
        if S::ENABLED && denied > 0 {
            self.emit(TraceEvent::RequestDeny {
                node: p as u32,
                child: d0 as u32,
                count: denied,
            });
        }
        if let Some(sending) = &self.ws.nodes[p].sending {
            if sending.child_pos == pos {
                let s = self.ws.nodes[p].sending.take().expect("checked above");
                self.ws.nodes[p].busy_link += self.ws.agenda.now() - s.started_at;
                self.ws.agenda.cancel(s.handle);
                reclaimed += 1;
            }
        }
        if let Some(active) = &self.ws.nodes[p].active {
            if active.child_pos == pos {
                let a = self.ws.nodes[p].active.take().expect("checked above");
                self.ws.nodes[p].busy_link += self.ws.agenda.now() - a.started_at;
                self.ws.agenda.cancel(a.handle);
            }
        }
        if self.ws.nodes[p].slots[pos].take().is_some() {
            reclaimed += 1;
        }

        // Walk the departing subtree, reclaiming everything it holds. A
        // branch that departed earlier was already reclaimed then (its
        // ledger still reports its old holdings) and must not be counted
        // again; its whole subtree is departed, so don't descend either.
        let mut stack = vec![d0];
        while let Some(d) = stack.pop() {
            if self.ws.nodes[d].departed {
                continue;
            }
            stack.extend(self.ws.children[d].iter().copied());
            let n = &mut self.ws.nodes[d];
            n.departed = true;
            if n.computing_since.take().is_some() {
                reclaimed += 1; // its ComputeDone event will be ignored
            }
            if n.sending.take().is_some() {
                reclaimed += 1; // SendDone ignored; task vanishes with d
            }
            n.active = None;
            reclaimed += n.slots.iter_mut().filter_map(Option::take).count() as u64;
            reclaimed += n.ledger.as_ref().map_or(0, |l| l.held()) as u64;
            n.pending_requests.iter_mut().for_each(|r| *r = 0);
        }

        self.emit(TraceEvent::NodeLeave {
            node: d0 as u32,
            reclaimed,
        });
        self.remaining += reclaimed;
        // The parent's link may have freed; the repository has new work.
        if matches!(self.cfg.protocol, Protocol::Interruptible) {
            self.reconcile_link(p);
        }
        self.enqueue(p);
        self.enqueue(0);
    }

    // ----- service pass ---------------------------------------------------

    fn enqueue(&mut self, i: usize) {
        if !self.ws.queued[i] {
            self.ws.queued[i] = true;
            self.ws.service_queue.push_back(i);
        }
    }

    fn drain(&mut self) {
        while let Some(i) = self.ws.service_queue.pop_front() {
            self.ws.queued[i] = false;
            if self.finished {
                continue;
            }
            self.service(i);
        }
    }

    fn service(&mut self, i: usize) {
        if self.ws.nodes[i].departed {
            return;
        }
        if self.cfg.self_first {
            self.fill_processor(i);
            self.fill_link(i);
        } else {
            self.fill_link(i);
            self.fill_processor(i);
        }
        self.issue_requests(i);
    }

    fn fill_processor(&mut self, i: usize) {
        if self.ws.nodes[i].computing_since.is_some() || !self.take_task(i) {
            return;
        }
        self.ws.nodes[i].computing_since = Some(self.ws.agenda.now());
        self.emit(TraceEvent::ComputeStart { node: i as u32 });
        let w = self.tree.compute_time(NodeId(i as u32));
        self.ws.agenda.schedule(w, Event::ComputeDone { node: i });
    }

    /// Takes one task for local use (compute or send start). Returns false
    /// if none is available. Applies §3.1 growth rule 1 on the transition
    /// to empty.
    fn take_task(&mut self, i: usize) -> bool {
        if i == 0 {
            if self.remaining == 0 {
                return false;
            }
            self.remaining -= 1;
            return true;
        }
        let pressure = self.has_child_requests(i);
        let now = self.ws.agenda.now();
        let ledger = self.ws.nodes[i]
            .ledger
            .as_mut()
            .expect("non-root has ledger");
        if ledger.held() == 0 {
            return false;
        }
        ledger.take_task();
        // Occupancy at the instant of removal, before any growth below.
        let (held, capacity) = (ledger.held(), ledger.capacity());
        if ledger.try_grow(GrowthEvent::ChildRequestPressure, pressure) {
            self.ws.nodes[i].last_pressure = now;
        }
        if S::ENABLED {
            self.emit(TraceEvent::BufferRelease {
                node: i as u32,
                held,
                capacity,
            });
        }
        true
    }

    fn has_task(&self, i: usize) -> bool {
        if i == 0 {
            self.remaining > 0
        } else {
            self.ws.nodes[i]
                .ledger
                .as_ref()
                .is_some_and(|l| l.held() > 0)
        }
    }

    fn has_child_requests(&self, i: usize) -> bool {
        self.ws.nodes[i].pending_requests.iter().any(|&r| r > 0)
    }

    fn child_info(&self, i: usize, pos: usize) -> ChildInfo {
        let child = self.ws.children[i][pos];
        let comm = if self.ws.nodes[i].observer.is_oracle() {
            self.tree.comm_time(NodeId(child as u32))
        } else {
            self.ws.nodes[i].observer.estimate(pos)
        };
        ChildInfo {
            index: pos,
            comm_estimate: comm,
            compute_estimate: self.tree.compute_time(NodeId(child as u32)),
        }
    }

    fn fill_link(&mut self, i: usize) {
        match self.cfg.protocol {
            Protocol::NonInterruptible => self.fill_link_nonic(i),
            Protocol::Interruptible => {
                self.fill_slots(i);
                self.reconcile_link(i);
            }
        }
    }

    fn fill_link_nonic(&mut self, i: usize) {
        if self.ws.nodes[i].sending.is_some() || !self.has_task(i) {
            return;
        }
        let mut candidates = std::mem::take(&mut self.ws.candidates);
        candidates.clear();
        for p in 0..self.ws.children[i].len() {
            if self.ws.nodes[i].pending_requests[p] > 0
                && !self.ws.nodes[self.ws.children[i][p]].departed
            {
                candidates.push(self.child_info(i, p));
            }
        }
        let chosen = self.ws.nodes[i].selector.select(&candidates);
        self.ws.candidates = candidates;
        let Some(pos) = chosen else {
            return;
        };
        if !self.take_task(i) {
            return;
        }
        self.ws.nodes[i].pending_requests[pos] -= 1;
        let child = self.ws.children[i][pos];
        let c = self.tree.comm_time(NodeId(child as u32));
        let now = self.ws.agenda.now();
        self.transfers_started += 1;
        self.emit(TraceEvent::TransferStart {
            node: i as u32,
            child: child as u32,
            work: c,
        });
        let handle = self.ws.agenda.schedule(c, Event::SendDone { node: i });
        self.ws.nodes[i].sending = Some(Sending {
            child_pos: pos,
            started_at: now,
            handle,
        });
    }

    /// IC: delegate buffered tasks into empty slots of requesting
    /// children, best-priority first, while tasks last.
    fn fill_slots(&mut self, i: usize) {
        let mut candidates = std::mem::take(&mut self.ws.candidates);
        loop {
            if !self.has_task(i) {
                break;
            }
            candidates.clear();
            for p in 0..self.ws.children[i].len() {
                if self.ws.nodes[i].pending_requests[p] > 0
                    && self.ws.nodes[i].slots[p].is_none()
                    && !self.ws.nodes[self.ws.children[i][p]].departed
                {
                    candidates.push(self.child_info(i, p));
                }
            }
            let Some(pos) = self.ws.nodes[i].selector.select(&candidates) else {
                break;
            };
            if !self.take_task(i) {
                break;
            }
            self.ws.nodes[i].pending_requests[pos] -= 1;
            self.transfers_started += 1;
            let child = self.ws.children[i][pos];
            let c = self.tree.comm_time(NodeId(child as u32));
            self.ws.nodes[i].slots[pos] = Some(SlotTransfer {
                remaining: c,
                total: c,
                started: false,
            });
        }
        self.ws.candidates = candidates;
    }

    /// IC: ensure the link transmits the highest-priority occupied slot,
    /// preempting if a better slot appeared (§3.2).
    fn reconcile_link(&mut self, i: usize) {
        let mut candidates = std::mem::take(&mut self.ws.candidates);
        candidates.clear();
        for p in 0..self.ws.children[i].len() {
            if self.ws.nodes[i].slots[p].is_some() {
                candidates.push(self.child_info(i, p));
            }
        }
        let best = self.ws.nodes[i].selector.best(&candidates);
        self.ws.candidates = candidates;
        match (&self.ws.nodes[i].active, best) {
            (_, None) => {
                debug_assert!(self.ws.nodes[i].active.is_none(), "active without slots");
            }
            (None, Some(b)) => self.activate(i, b),
            (Some(a), Some(b)) if b != a.child_pos => {
                let a_info = self.child_info(i, a.child_pos);
                let b_info = self.child_info(i, b);
                if self.ws.nodes[i].selector.outranks(&b_info, &a_info) {
                    self.preempt(i);
                    // The preempted transfer may have completed at this
                    // exact instant; re-rank rather than assuming `b`.
                    self.reconcile_link(i);
                }
            }
            _ => {}
        }
    }

    fn activate(&mut self, i: usize, pos: usize) {
        debug_assert!(self.ws.nodes[i].active.is_none());
        let slot = self.ws.nodes[i].slots[pos]
            .as_mut()
            .expect("activating an empty slot");
        let remaining = slot.remaining;
        let first = !slot.started;
        let total = slot.total;
        slot.started = true;
        if S::ENABLED {
            let child = self.ws.children[i][pos] as u32;
            self.emit(if first {
                TraceEvent::TransferStart {
                    node: i as u32,
                    child,
                    work: total,
                }
            } else {
                TraceEvent::TransferResume {
                    node: i as u32,
                    child,
                    remaining,
                }
            });
        }
        let now = self.ws.agenda.now();
        let handle = self
            .ws
            .agenda
            .schedule(remaining, Event::TransferDone { node: i });
        self.ws.nodes[i].active = Some(ActiveTransfer {
            child_pos: pos,
            started_at: now,
            remaining_at_start: remaining,
            handle,
        });
    }

    /// Shelves the active transfer (or finishes it inline if it has
    /// exactly zero work left at this instant).
    fn preempt(&mut self, i: usize) {
        self.preemptions += 1;
        self.ws.nodes[i].preemptions += 1;
        let a = self.ws.nodes[i]
            .active
            .take()
            .expect("preempting idle link");
        self.ws.agenda.cancel(a.handle);
        let elapsed = self.ws.agenda.now() - a.started_at;
        self.ws.nodes[i].busy_link += elapsed;
        let remaining = a
            .remaining_at_start
            .checked_sub(elapsed)
            .expect("transfer ran past its completion");
        let slot = self.ws.nodes[i].slots[a.child_pos]
            .as_mut()
            .expect("active transfer without slot");
        slot.remaining = remaining;
        if S::ENABLED {
            let child = self.ws.children[i][a.child_pos] as u32;
            self.emit(TraceEvent::TransferPreempt {
                node: i as u32,
                child,
                remaining,
            });
        }
        if remaining == 0 {
            self.finish_slot(i, a.child_pos);
        }
    }

    // ----- requests -------------------------------------------------------

    fn issue_requests(&mut self, i: usize) {
        if i == 0 {
            return;
        }
        let now = self.ws.agenda.now();
        // Decay (extension): reclaim an idle grown buffer after a quiet
        // window, before covering it with a fresh request.
        let last_pressure = self.ws.nodes[i].last_pressure;
        if let Some(ledger) = &mut self.ws.nodes[i].ledger {
            if let Some(window) = ledger.decay_after() {
                if now.saturating_sub(last_pressure) >= window && ledger.try_shrink() {
                    self.ws.nodes[i].last_pressure = now;
                }
            }
        }
        let ledger = self.ws.nodes[i]
            .ledger
            .as_mut()
            .expect("non-root has ledger");
        let n = ledger.uncovered();
        if n == 0 {
            return;
        }
        ledger.note_requests_sent(n);
        self.requests_sent += n as u64;
        self.emit(TraceEvent::Request {
            node: i as u32,
            count: n,
        });
        let parent = self.ws.parent_of[i].expect("non-root has parent");
        let pos = self.ws.child_pos[i];
        self.ws.nodes[parent].pending_requests[pos] += n;
        self.enqueue(parent);
    }

    // ----- introspection (for tests) ---------------------------------------

    /// Tasks completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.ws.agenda.now()
    }
}
