//! The event-driven protocol simulator.
//!
//! One [`Simulation`] runs one application (a finite count of identical,
//! independent tasks) over one platform tree under one protocol
//! configuration. The base model of §2.1 is enforced structurally: each
//! node owns three independent resources — a processor (one task at a
//! time), an inbound link from its parent (the parent serializes sends,
//! so at most one task is ever inbound), and an outbound link shared by
//! its children (one active transmission at a time).
//!
//! ## Protocol flow (both variants)
//!
//! * A node keeps one outstanding request to its parent per uncovered
//!   empty buffer; requests are instantaneous control messages.
//! * Buffers empty at compute *start* and send *start* (§3.1), which is
//!   also the moment the freed buffer is re-requested.
//! * **Non-interruptible**: the outbound link serves one transfer to
//!   completion; buffer growth follows the three §3.1 rules.
//! * **Interruptible**: a delegated task moves into the destination
//!   child's transfer slot; the link always transmits the slot of the
//!   highest-priority occupied child, preempting (shelving) lower-priority
//!   partial transfers, which resume where they left off (§3.2).
//!
//! ## Wind-down and accounting
//!
//! The root dispenses exactly `total_tasks` tasks; the run ends at the
//! `total_tasks`-th completion. A task "completes" when its computation
//! finishes (the edge weight folds the result's return trip into the
//! downward transfer; see DESIGN.md).
//!
//! ## Hot/cold state split (see DESIGN.md, "Event-kernel anatomy")
//!
//! Per-node runtime state is split by access frequency. [`HotNode`]
//! holds only what the fault-free event loop touches on (nearly) every
//! event — the ledger, the compute timer, the busy-time accumulators and
//! the liveness bits — in ~1.5 cache lines (the old monolithic node
//! record spanned more than five). Per-*child* protocol state lives in
//! flat CSR arrays on the workspace (`kid_*`): node `i`'s children
//! occupy the contiguous index range `kid_start[i]..kid_start[i+1]`, so
//! the candidate-building loops of child selection and link reconciling
//! stream over dense parallel arrays instead of chasing per-node `Vec`s
//! and re-deriving estimates through the observer on every pass
//! (`kid_comm` caches the estimate; it is refreshed at the few sites
//! where an estimate can change). Everything only rare paths read —
//! observer, selector, preemption counts, decay timestamps — lives in
//! [`ColdNode`], and fault-recovery state stays in [`FaultRt`] behind
//! the `fault_active` gate as before.
//!
//! ## Workspace reuse (campaign engine)
//!
//! All of a simulation's runtime containers — agenda, per-node state,
//! topology arrays, scratch buffers — live in a [`SimWorkspace`]. A
//! campaign worker constructs each simulation
//! [with the same workspace](Simulation::with_workspace) and takes it
//! back from [`Simulation::run_reusing`], so after the first few runs
//! warm the capacities, subsequent runs perform **no steady-state heap
//! allocation at all** (verified by the `alloc_free` integration test).

use crate::arrivals::{AdmissionPolicy, Arrival};
use crate::config::{
    ChangeKind, FaultEvent, FaultInjection, FaultKind, FaultPlan, Protocol, RecoveryTuning,
    SelectorKind, SimConfig,
};
use crate::result::{ArrivalStats, FaultStats, RunResult};
use crate::snapshot::{ArrivalCursor, CursorSnapshot, SimSnapshot, TimeTravel};
use bc_core::{BufferLedger, BufferPolicy, ChildInfo, ChildSelector, GrowthEvent, LatencyObserver};
use bc_platform::{NodeId, Tree};
use bc_simcore::{split_seed, Agenda, EventHandle, NullSink, Time, TraceEvent, TraceSink};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    ComputeDone {
        node: usize,
    },
    /// Elision macro-event: `count` back-to-back computations at `node`,
    /// proven inert at schedule time (see `chain_len`). The handler
    /// replays the per-completion bookkeeping at the original
    /// timestamps, so results are bit-identical to `count` separate
    /// `ComputeDone`s.
    ComputeChain {
        node: usize,
        count: u64,
    },
    /// Non-interruptible send completion.
    SendDone {
        node: usize,
    },
    /// Interruptible active-transfer completion.
    TransferDone {
        node: usize,
    },
    /// A scheduled environment fault strikes (index into the plan).
    Fault {
        index: usize,
    },
    /// `node`'s uplink outage window ends; deferred nacks resolve.
    OutageEnd {
        node: usize,
    },
    /// `node`'s request timeout fires: any lost requests are withdrawn
    /// and re-issued with backoff.
    RequestTimeout {
        node: usize,
    },
    /// The repository's detection latency elapsed: `count` lost tasks
    /// re-enter the remaining pool.
    Reissue {
        count: u64,
    },
    /// Open-world mode: the arrival cursor reached its next instant.
    /// The handler injects every arrival due now and re-chains itself,
    /// so the agenda never holds more than one pending arrival.
    Arrival,
}

impl Event {
    /// Profiler kind index (must match `profile::KIND_NAMES` order).
    #[cfg(feature = "profile")]
    fn kind(&self) -> usize {
        match self {
            Event::ComputeDone { .. } => 0,
            Event::SendDone { .. } => 1,
            Event::TransferDone { .. } => 2,
            Event::ComputeChain { .. } => 3,
            Event::Fault { .. } => 4,
            Event::OutageEnd { .. } => 5,
            Event::RequestTimeout { .. } => 6,
            Event::Reissue { .. } => 7,
            Event::Arrival => 8,
        }
    }
}

/// How an aborted transfer's negative acknowledgement reaches the
/// intended receiver.
#[derive(Clone, Copy)]
enum Nack {
    /// The child is live with its uplink up: it re-requests immediately.
    Instant,
    /// The child's uplink is down: the nack resolves at the outage's end.
    Deferred,
    /// The child crashed: there is no one to notify.
    None,
}

/// Non-IC: the single in-flight outbound transfer.
#[derive(Clone)]
pub(crate) struct Sending {
    pub(crate) child_pos: usize,
    pub(crate) started_at: Time,
    pub(crate) handle: EventHandle,
}

/// IC: a task parked in (or transmitting from) a per-child transfer slot.
#[derive(Clone)]
pub(crate) struct SlotTransfer {
    /// Transmission work left, in timesteps.
    pub(crate) remaining: u64,
    /// Total transmission work (the edge weight at delegation time) —
    /// reported to the latency observer on completion.
    pub(crate) total: u64,
    /// Whether this transfer has ever transmitted (distinguishes a first
    /// activation from a resume when a preemption landed at elapsed 0).
    pub(crate) started: bool,
}

/// IC: the currently transmitting slot.
#[derive(Clone)]
pub(crate) struct ActiveTransfer {
    pub(crate) child_pos: usize,
    pub(crate) started_at: Time,
    pub(crate) remaining_at_start: u64,
    pub(crate) handle: EventHandle,
}

/// Per-node *hot* runtime state: exactly the fields the fault-free event
/// loop reads or writes on (nearly) every event involving the node.
/// Everything per-child lives in the workspace's flat `kid_*` CSR
/// arrays; everything rarely touched lives in [`ColdNode`].
#[derive(Clone)]
pub(crate) struct HotNode {
    /// Buffer ledger; `None` at the root (the repository draws from the
    /// task source directly).
    pub(crate) ledger: Option<BufferLedger>,
    /// Start time of the in-progress computation, if any.
    pub(crate) computing_since: Option<Time>,
    pub(crate) tasks_computed: u64,
    /// Accumulated processor busy time.
    pub(crate) busy_compute: u64,
    /// Accumulated outbound-link busy (transmitting) time.
    pub(crate) busy_link: u64,
    /// True once the node has left the overlay (dynamic-topology
    /// extension); departed nodes ignore events and are never selected.
    pub(crate) departed: bool,
    /// True once the node died abruptly (fault model). Unlike `departed`,
    /// a crash is *not* globally known: the parent keeps its pending
    /// requests and keeps delegating until missed acks cross the
    /// threshold.
    pub(crate) crashed: bool,
}

impl HotNode {
    fn fresh(index: usize, cfg: &SimConfig) -> HotNode {
        HotNode {
            ledger: (index != 0).then(|| BufferLedger::new(effective_buffers(cfg))),
            computing_since: None,
            tasks_computed: 0,
            busy_compute: 0,
            busy_link: 0,
            departed: false,
            crashed: false,
        }
    }
}

/// Per-node *cold* runtime state: consulted once per completed transfer
/// (observer), per service pass (selector), or only on rare extension
/// paths (decay, preemption accounting). Kept out of [`HotNode`] so the
/// per-event working set stays small.
#[derive(Clone)]
pub(crate) struct ColdNode {
    pub(crate) observer: LatencyObserver,
    pub(crate) selector: ChildSelector,
    /// Preemptions performed on this node's outbound link.
    pub(crate) preemptions: u64,
    /// Last time a growth rule fired (drives the optional decay
    /// extension).
    pub(crate) last_pressure: Time,
}

impl ColdNode {
    fn fresh(kids: usize, cfg: &SimConfig) -> ColdNode {
        ColdNode {
            observer: LatencyObserver::new(cfg.observer, kids),
            selector: make_selector(cfg.selector),
            preemptions: 0,
            last_pressure: 0,
        }
    }

    /// Reinitializes for a new run, keeping the observer's capacity.
    fn reset(&mut self, kids: usize, cfg: &SimConfig) {
        self.observer.reset(cfg.observer, kids);
        self.selector = make_selector(cfg.selector);
        self.preemptions = 0;
        self.last_pressure = 0;
    }
}

fn make_selector(kind: SelectorKind) -> ChildSelector {
    match kind {
        SelectorKind::BandwidthCentric => ChildSelector::BandwidthCentric,
        SelectorKind::ComputeCentric => ChildSelector::ComputeCentric,
        SelectorKind::RoundRobin => ChildSelector::round_robin(),
    }
}

/// The buffer policy nodes are actually built with: the configured one,
/// unless the `FbOffByOne` checker-validation fault inflates it.
fn effective_buffers(cfg: &SimConfig) -> BufferPolicy {
    match cfg.fault {
        Some(FaultInjection::FbOffByOne) => match cfg.buffers {
            BufferPolicy::Fixed(k) => BufferPolicy::Fixed(k + 1),
            BufferPolicy::Growable {
                initial,
                cap,
                gate,
                decay_after,
            } => BufferPolicy::Growable {
                initial: initial + 1,
                cap,
                gate,
                decay_after,
            },
        },
        _ => cfg.buffers,
    }
}

/// Per-node fault-recovery state, kept out of [`HotNode`] on purpose:
/// the fault-free hot path never reads it (every access is behind the
/// `fault_active` gate or inside fault event handlers), and folding
/// these bytes into the hot record measurably slows fault-free campaigns
/// by growing the per-node working set. Per-child missed-ack counters
/// live in the workspace's `kid_missed` CSR array.
#[derive(Clone, Default)]
pub(crate) struct FaultRt {
    /// The node exhausted its request retries and presumes its parent
    /// dead; it stops requesting (a successful delivery revives it).
    pub(crate) orphaned: bool,
    /// Requests sent but lost in the network — covered at this node,
    /// unknown to the parent. Withdrawn and re-sent when the request
    /// timeout fires.
    pub(crate) lost_requests: u32,
    /// Negative acknowledgements (aborted inbound transfers or discarded
    /// pending requests) that cannot reach this node while its uplink is
    /// down; resolved at the outage's end.
    pub(crate) pending_nacks: u32,
    /// Consecutive fruitless request retries.
    pub(crate) retry: u32,
    /// The armed request-timeout event, if any.
    pub(crate) timeout: Option<EventHandle>,
    /// The node's uplink is down until this instant.
    pub(crate) outage_until: Time,
    /// Request batches from this node still to be dropped.
    pub(crate) drop_batches: u32,
    /// Deliveries into this node still to be duplicated.
    pub(crate) dup_deliveries: u32,
}

/// Open-world arrival runtime: the pregenerated schedule, the injection
/// cursor, the deferred (backpressured) queue, and the admission /
/// latency accounting. Boxed on the [`Simulation`] and `None` in batch
/// mode, so the closed-world hot path carries one dead pointer and the
/// `AR = false` monomorphization compiles every touch point out.
pub(crate) struct ArrivalRt {
    /// The plan's pregenerated sorted schedule (regenerated, not
    /// serialized, on snapshot restore — it is a pure function of the
    /// configuration).
    pub(crate) schedule: Vec<Arrival>,
    /// Next schedule entry to inject.
    pub(crate) cursor: usize,
    /// Admission bound and policy, copied out of the plan.
    pub(crate) queue_cap: u64,
    pub(crate) policy: AdmissionPolicy,
    /// Deferred arrivals (schedule indices), FIFO.
    pub(crate) deferred: VecDeque<u32>,
    /// Unit tasks currently sitting in `deferred`.
    pub(crate) deferred_units: u64,
    /// Accounting (see [`ArrivalStats`] for semantics).
    pub(crate) submitted: u64,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) deferrals: u64,
    pub(crate) peak_deferred: u64,
    /// Per-admitted-unit admission timestamps, admission order.
    pub(crate) admit_times: Vec<Time>,
    /// Per-unit root-dispatch timestamps, dispatch order.
    pub(crate) dispatch_times: Vec<Time>,
    /// Class of each admitted unit, admission order (drives the
    /// per-class completion attribution).
    pub(crate) admit_class: Vec<u32>,
    pub(crate) admitted_per_class: Vec<u64>,
    /// `LeakQueuedTask` checker-validation fault: deferrals counted
    /// toward the leak period.
    pub(crate) leak_tick: u64,
}

impl ArrivalRt {
    fn new(plan: &crate::arrivals::ArrivalPlan) -> Box<ArrivalRt> {
        Box::new(ArrivalRt {
            schedule: plan.schedule(),
            cursor: 0,
            queue_cap: plan.queue_cap,
            policy: plan.policy,
            deferred: VecDeque::new(),
            deferred_units: 0,
            submitted: 0,
            admitted: 0,
            rejected: 0,
            deferrals: 0,
            peak_deferred: 0,
            admit_times: Vec::new(),
            dispatch_times: Vec::new(),
            admit_class: Vec::new(),
            admitted_per_class: vec![0; plan.classes.len()],
            leak_tick: 0,
        })
    }
}

/// Reusable simulation runtime state: every container a run needs, kept
/// between runs with capacity intact.
///
/// One workspace serves one worker thread: construct simulations with
/// [`Simulation::with_workspace`], get the workspace back from
/// [`Simulation::run_reusing`], and the steady-state event loop stops
/// allocating after the first few runs warm the arenas.
///
/// Child-indexed protocol state uses a CSR layout: node `i`'s children
/// occupy indices `kid_start[i]..kid_start[i+1]` of the parallel
/// `kid_*` arrays. Joins splice into the parent's row (rare, O(total
/// children)); the hot-path loops get dense sequential scans.
#[derive(Default)]
pub struct SimWorkspace {
    pub(crate) agenda: Agenda<Event>,
    /// Hot per-node state (see [`HotNode`]).
    pub(crate) hot: Vec<HotNode>,
    /// Cold per-node state, parallel to `hot` (see [`ColdNode`]).
    pub(crate) cold: Vec<ColdNode>,
    /// Non-IC: the single in-flight outbound transfer, per node.
    pub(crate) sending: Vec<Option<Sending>>,
    /// IC: the currently transmitting slot, per node.
    pub(crate) active: Vec<Option<ActiveTransfer>>,
    /// Per-node fault-recovery state, parallel to `hot` (see
    /// [`FaultRt`] for why it is a separate array).
    pub(crate) faults: Vec<FaultRt>,
    pub(crate) parent_of: Vec<Option<usize>>,
    /// Position of node `i` within its parent's child list.
    pub(crate) child_pos: Vec<usize>,
    /// CSR row offsets: node `i`'s children are entries
    /// `kid_start[i]..kid_start[i+1]` of the `kid_*` arrays below.
    pub(crate) kid_start: Vec<u32>,
    /// Child node index per entry.
    pub(crate) kid_node: Vec<u32>,
    /// Outstanding requests from that child.
    pub(crate) kid_pending: Vec<u32>,
    /// IC transfer slot toward that child.
    pub(crate) kid_slot: Vec<Option<SlotTransfer>>,
    /// Cached communication estimate for that child: the true edge
    /// weight under an oracle observer, the observer's current estimate
    /// otherwise. Refreshed wherever the estimate can change (observe
    /// sites, scripted weight changes, joins).
    pub(crate) kid_comm: Vec<u64>,
    /// Cached compute weight of that child (scripted changes refresh it).
    pub(crate) kid_compute: Vec<u64>,
    /// Consecutive missed acks toward that child (fault model).
    pub(crate) kid_missed: Vec<u8>,
    /// Per-node sum of `kid_pending` over the node's row — lets the hot
    /// path answer "any child requesting?" without scanning the row.
    pub(crate) pending_sum: Vec<u32>,
    /// Per-node count of occupied `kid_slot` entries — lets
    /// `reconcile_link` skip the candidate scan when the active transfer
    /// is the only occupied slot (the overwhelmingly common case).
    pub(crate) slots_used: Vec<u32>,
    /// Whether that child has departed — mirrors the child's
    /// `HotNode::departed` so candidate loops never touch the child's
    /// cache lines.
    pub(crate) kid_gone: Vec<bool>,
    pub(crate) service_queue: VecDeque<usize>,
    pub(crate) queued: Vec<bool>,
    pub(crate) completion_times: Vec<Time>,
    pub(crate) checkpoint_records: Vec<(u64, u32)>,
    /// Scratch for candidate lists (child selection / link reconciling);
    /// taken and restored around each use so the event loop never
    /// allocates.
    pub(crate) candidates: Vec<ChildInfo>,
}

impl SimWorkspace {
    /// An empty workspace (allocations happen lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: run one simulation in this workspace. Equivalent to
    /// `Simulation::with_workspace` + `run_reusing`, with the workspace
    /// automatically returned to `self`.
    pub fn run(&mut self, tree: Tree, cfg: SimConfig) -> RunResult {
        let ws = std::mem::take(self);
        let (result, ws) = Simulation::with_workspace(tree, cfg, ws).run_reusing();
        *self = ws;
        result
    }

    /// CSR entry range of node `i`'s children.
    #[inline(always)]
    pub(crate) fn krange(&self, i: usize) -> std::ops::Range<usize> {
        self.kid_start[i] as usize..self.kid_start[i + 1] as usize
    }

    /// Node index of `i`'s child at position `pos`.
    #[inline(always)]
    pub(crate) fn kid(&self, i: usize, pos: usize) -> usize {
        self.kid_node[self.kid_start[i] as usize + pos] as usize
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// Generic over its [`TraceSink`]: the default [`NullSink`] has
/// `ENABLED = false`, so every instrumentation site monomorphizes to
/// nothing and the untraced event loop is byte-for-byte the pre-tracing
/// one (the `alloc_free` test proves it stays allocation-free). Pass a
/// real sink via [`Simulation::traced`] to capture the full event
/// stream.
pub struct Simulation<S: TraceSink = NullSink> {
    pub(crate) tree: Tree,
    pub(crate) cfg: SimConfig,
    pub(crate) ws: SimWorkspace,
    pub(crate) sink: S,
    /// Tasks the root has not yet dispensed (to itself or a child). In
    /// open-world mode this is the *admitted* queue — the quantity the
    /// admission bound caps — and starts at 0.
    pub(crate) remaining: u64,
    pub(crate) completed: u64,
    /// Completion count that ends the run: `total_tasks`, minus (in
    /// open-world `Drop` mode) every rejected unit. Counting unarrived
    /// units keeps the check `completed >= finish_target` exact — it can
    /// only fire once everything submittable has been served.
    pub(crate) finish_target: u64,
    next_checkpoint: usize,
    next_change: usize,
    pub(crate) events_processed: u64,
    /// Preemptions performed (interruptible protocol only).
    pub(crate) preemptions: u64,
    /// Task transfers started (both protocols).
    pub(crate) transfers_started: u64,
    /// Request messages sent upward.
    pub(crate) requests_sent: u64,
    started: bool,
    pub(crate) finished: bool,
    /// Checked mode: last event time seen by the checker (monotonicity).
    pub(crate) check_last_now: Time,
    /// Checked mode: events since the last full invariant sweep.
    pub(crate) events_since_sweep: u32,
    /// Fault injection only: deliveries counted toward `LeakTask`.
    faulty_deliveries: u64,
    /// True iff a fault plan is configured — the single gate keeping the
    /// recovery plumbing off the fault-free hot path.
    pub(crate) fault_active: bool,
    /// Recovery tuning (default when no plan; never read then).
    recovery: RecoveryTuning,
    /// Jitter seed from the fault plan.
    fault_seed: u64,
    /// Missed-ack threshold; `u8::MAX` without a plan so no child is ever
    /// presumed dead on the fault-free path.
    dead_threshold: u8,
    /// Tasks destroyed by faults and not yet reissued by the repository
    /// (the conservation ledger's lost term).
    pub(crate) lost_pending: u64,
    /// Fault/recovery accounting for the run result.
    pub(crate) fstats: FaultStats,
    /// Static part of the elision gate (config- and sink-derived); the
    /// per-decision part lives in `chain_len`.
    elide_base: bool,
    /// Events elided into macro-events (introspection only; never part
    /// of `RunResult` — `events_processed` already counts replayed
    /// completions as if they had been popped individually).
    elided: u64,
    /// Checked-mode time travel: periodic snapshots so an invariant
    /// violation can be replayed from just before it (see
    /// `snapshot.rs`). `None` whenever checked mode is off, so the
    /// campaign hot path never touches it.
    pub(crate) time_travel: Option<Box<TimeTravel>>,
    /// Open-world arrival runtime; `None` in batch mode (always mirrors
    /// `cfg.arrivals.is_some()`, like `fault_active` mirrors the plan).
    pub(crate) arrivals: Option<Box<ArrivalRt>>,
}

impl Simulation {
    /// Builds a simulation with a fresh workspace. Panics on invalid
    /// configuration or tree (programming errors; experiment inputs are
    /// validated upstream).
    pub fn new(tree: Tree, cfg: SimConfig) -> Self {
        Self::with_workspace(tree, cfg, SimWorkspace::new())
    }

    /// Builds a simulation reusing `ws`'s allocations (returned by
    /// [`Simulation::run_reusing`]). Any state from a previous run is
    /// cleared; capacities are kept.
    pub fn with_workspace(tree: Tree, cfg: SimConfig, ws: SimWorkspace) -> Self {
        Simulation::traced(tree, cfg, ws, NullSink)
    }
}

impl<S: TraceSink> Simulation<S> {
    /// Builds a simulation whose event loop streams every protocol event
    /// into `sink` (see [`TraceEvent`] for the taxonomy). Run it with
    /// [`Simulation::run_traced`] to get the sink back.
    pub fn traced(tree: Tree, cfg: SimConfig, mut ws: SimWorkspace, sink: S) -> Simulation<S> {
        cfg.validate().expect("invalid SimConfig");
        tree.validate().expect("invalid Tree");
        let n = tree.len();
        if let Some(plan) = &cfg.fault_plan {
            for f in &plan.faults {
                assert!(
                    f.node.index() < n,
                    "fault targets unknown node {} (tree has {n})",
                    f.node
                );
            }
        }

        ws.agenda.reset();
        ws.service_queue.clear();
        ws.queued.clear();
        ws.queued.resize(n, false);
        ws.completion_times.clear();
        ws.completion_times.reserve(cfg.total_tasks as usize);
        ws.checkpoint_records.clear();
        ws.checkpoint_records.reserve(cfg.checkpoints.len());
        ws.candidates.clear();

        // Topology + CSR child tables.
        ws.parent_of.clear();
        ws.parent_of.resize(n, None);
        ws.child_pos.clear();
        ws.child_pos.resize(n, 0);
        ws.kid_start.clear();
        ws.kid_node.clear();
        ws.kid_start.push(0);
        for id in tree.ids() {
            for (pos, &ch) in tree.children(id).iter().enumerate() {
                ws.parent_of[ch.index()] = Some(id.index());
                ws.child_pos[ch.index()] = pos;
                ws.kid_node.push(ch.index() as u32);
            }
            ws.kid_start.push(ws.kid_node.len() as u32);
        }
        let kids_total = ws.kid_node.len();
        ws.kid_pending.clear();
        ws.kid_pending.resize(kids_total, 0);
        ws.kid_slot.clear();
        ws.kid_slot.resize_with(kids_total, || None);
        ws.kid_missed.clear();
        ws.kid_missed.resize(kids_total, 0);
        ws.pending_sum.clear();
        ws.pending_sum.resize(n, 0);
        ws.slots_used.clear();
        ws.slots_used.resize(n, 0);
        ws.kid_gone.clear();
        ws.kid_gone.resize(kids_total, false);
        ws.kid_compute.clear();
        ws.kid_compute
            .extend(ws.kid_node.iter().map(|&c| tree.compute_time(NodeId(c))));

        // Per-node runtime state, rebuilt in place where possible.
        ws.hot.clear();
        for i in 0..n {
            ws.hot.push(HotNode::fresh(i, &cfg));
        }
        let reusable = ws.cold.len().min(n);
        for i in 0..reusable {
            let kids = (ws.kid_start[i + 1] - ws.kid_start[i]) as usize;
            ws.cold[i].reset(kids, &cfg);
        }
        for i in reusable..n {
            let kids = (ws.kid_start[i + 1] - ws.kid_start[i]) as usize;
            ws.cold.push(ColdNode::fresh(kids, &cfg));
        }
        ws.cold.truncate(n);
        ws.sending.clear();
        ws.sending.resize_with(n, || None);
        ws.active.clear();
        ws.active.resize_with(n, || None);
        for f in ws.faults.iter_mut().take(n) {
            *f = FaultRt::default();
        }
        while ws.faults.len() < n {
            ws.faults.push(FaultRt::default());
        }
        ws.faults.truncate(n);

        // Estimate cache: the exact value `ChildInfo` used to derive on
        // every candidate build.
        ws.kid_comm.clear();
        for i in 0..n {
            let oracle = ws.cold[i].observer.is_oracle();
            let r = ws.kid_start[i] as usize..ws.kid_start[i + 1] as usize;
            for (pos, &c) in ws.kid_node[r].iter().enumerate() {
                ws.kid_comm.push(if oracle {
                    tree.comm_time(NodeId(c))
                } else {
                    ws.cold[i].observer.estimate(pos)
                });
            }
        }

        let arrivals = cfg.arrivals.as_ref().map(ArrivalRt::new);
        let remaining = if arrivals.is_some() {
            0
        } else {
            cfg.total_tasks
        };
        let finish_target = cfg.total_tasks;
        let fault_active = cfg.fault_plan.is_some();
        let recovery = cfg
            .fault_plan
            .as_ref()
            .map_or_else(RecoveryTuning::default, |p| p.recovery);
        let fault_seed = cfg.fault_plan.as_ref().map_or(0, |p| p.seed);
        let dead_threshold = if fault_active {
            recovery.missed_ack_threshold
        } else {
            u8::MAX
        };
        // Elision is sound only where every inertness argument in
        // `chain_len` holds unconditionally: no trace stream to keep
        // faithful, no checker sweeps between events, no faults, no
        // streaming arrivals (an arrival or deferred-queue drain can
        // land inside a chain and `chain_len`'s remaining-task bound
        // assumes a fixed pool), and a fixed buffer policy (growth/decay
        // react to the very services being elided).
        let elide_base = cfg.elision
            && !S::ENABLED
            && !cfg.checked
            && cfg.fault.is_none()
            && !fault_active
            && arrivals.is_none()
            && matches!(cfg.buffers, BufferPolicy::Fixed(_));
        let time_travel = cfg.checked.then(|| Box::new(TimeTravel::from_env()));
        Simulation {
            tree,
            cfg,
            ws,
            sink,
            remaining,
            completed: 0,
            finish_target,
            next_checkpoint: 0,
            next_change: 0,
            events_processed: 0,
            preemptions: 0,
            transfers_started: 0,
            requests_sent: 0,
            started: false,
            finished: false,
            check_last_now: 0,
            events_since_sweep: 0,
            faulty_deliveries: 0,
            fault_active,
            recovery,
            fault_seed,
            dead_threshold,
            lost_pending: 0,
            fstats: FaultStats::default(),
            elide_base,
            elided: 0,
            time_travel,
            arrivals,
        }
    }

    /// Events that were elided into macro-events (the difference between
    /// `events_processed` and the number of agenda pops). Zero whenever
    /// [`SimConfig::elision`] is off or force-disabled (tracing, checked
    /// mode, faults, non-fixed buffers).
    pub fn events_elided(&self) -> u64 {
        self.elided
    }

    /// Start-up: every node issues its initial requests; the cascade
    /// reaches the root, which begins computing and sending. Idempotent;
    /// [`Simulation::step`] calls it automatically.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // start() runs at t=0, so scheduling by delay places each fault
        // at its absolute time.
        if let Some(plan) = &self.cfg.fault_plan {
            for (index, f) in plan.faults.iter().enumerate() {
                self.ws.agenda.schedule(f.at, Event::Fault { index });
            }
        }
        if let Some(ar) = &self.arrivals {
            if let Some(first) = ar.schedule.first() {
                self.ws.agenda.schedule(first.at, Event::Arrival);
            }
        }
        for i in 0..self.ws.hot.len() {
            self.enqueue(i);
        }
        match (
            self.fault_active,
            self.cfg.protocol,
            self.arrivals.is_some(),
        ) {
            (false, Protocol::Interruptible, false) => self.drain::<false, true, false>(),
            (false, Protocol::NonInterruptible, false) => self.drain::<false, false, false>(),
            (true, Protocol::Interruptible, false) => self.drain::<true, true, false>(),
            (true, Protocol::NonInterruptible, false) => self.drain::<true, false, false>(),
            (false, Protocol::Interruptible, true) => self.drain::<false, true, true>(),
            (false, Protocol::NonInterruptible, true) => self.drain::<false, false, true>(),
            (true, Protocol::Interruptible, true) => self.drain::<true, true, true>(),
            (true, Protocol::NonInterruptible, true) => self.drain::<true, false, true>(),
        }
    }

    /// Processes exactly one event (plus the resulting service cascade).
    /// Returns `false` once the final task has completed. Panics on
    /// deadlock (empty agenda before the last completion) or event-budget
    /// exhaustion, like [`Simulation::run`].
    pub fn step(&mut self) -> bool {
        match (
            self.fault_active,
            self.cfg.protocol,
            self.arrivals.is_some(),
        ) {
            (false, Protocol::Interruptible, false) => self.step_mono::<false, true, false>(),
            (false, Protocol::NonInterruptible, false) => self.step_mono::<false, false, false>(),
            (true, Protocol::Interruptible, false) => self.step_mono::<true, true, false>(),
            (true, Protocol::NonInterruptible, false) => self.step_mono::<true, false, false>(),
            (false, Protocol::Interruptible, true) => self.step_mono::<false, true, true>(),
            (false, Protocol::NonInterruptible, true) => self.step_mono::<false, false, true>(),
            (true, Protocol::Interruptible, true) => self.step_mono::<true, true, true>(),
            (true, Protocol::NonInterruptible, true) => self.step_mono::<true, false, true>(),
        }
    }

    /// [`Simulation::step`], monomorphized on whether a fault plan is
    /// active, on the protocol, and on whether an arrival plan is
    /// active. The `FA = false` instantiation compiles every recovery
    /// gate out of the event loop, keeping the fault-free hot path at
    /// its pre-fault-model cost; `IC` compiles the other discipline's
    /// link path out of the service cascade; `AR = false` compiles the
    /// open-world admission/latency plumbing out the same way. They
    /// always mirror `self.fault_active` / `self.cfg.protocol` /
    /// `self.arrivals.is_some()`.
    fn step_mono<const FA: bool, const IC: bool, const AR: bool>(&mut self) -> bool {
        self.start();
        if self.finished {
            return false;
        }
        let Some((_, ev)) = self.ws.agenda.next() else {
            panic!(
                "simulation deadlock: {}/{} tasks completed with an empty agenda",
                self.completed, self.cfg.total_tasks
            );
        };
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.cfg.max_events,
            "event budget exceeded ({}); runaway simulation",
            self.cfg.max_events
        );
        #[cfg(feature = "profile")]
        let (pk, pt) = (ev.kind(), crate::profile::start());
        self.handle::<FA, AR>(ev);
        self.drain::<FA, IC, AR>();
        #[cfg(feature = "profile")]
        crate::profile::record(pk, pt);
        if self.cfg.checked {
            self.checked_tick();
        }
        !self.finished
    }

    /// Runs to the final task completion and returns the trace.
    pub fn run(self) -> RunResult {
        self.run_reusing().0
    }

    /// Runs to completion, returning the trace *and* the workspace so
    /// the next simulation can reuse its allocations.
    pub fn run_reusing(self) -> (RunResult, SimWorkspace) {
        let (result, ws, _sink) = self.run_traced();
        (result, ws)
    }

    /// Runs to completion, returning the result, the workspace, and the
    /// trace sink (with whatever it recorded).
    pub fn run_traced(mut self) -> (RunResult, SimWorkspace, S) {
        self.start();
        match (
            self.fault_active,
            self.cfg.protocol,
            self.arrivals.is_some(),
        ) {
            (false, Protocol::Interruptible, false) => {
                while self.step_mono::<false, true, false>() {}
            }
            (false, Protocol::NonInterruptible, false) => {
                while self.step_mono::<false, false, false>() {}
            }
            (true, Protocol::Interruptible, false) => {
                while self.step_mono::<true, true, false>() {}
            }
            (true, Protocol::NonInterruptible, false) => {
                while self.step_mono::<true, false, false>() {}
            }
            (false, Protocol::Interruptible, true) => {
                while self.step_mono::<false, true, true>() {}
            }
            (false, Protocol::NonInterruptible, true) => {
                while self.step_mono::<false, false, true>() {}
            }
            (true, Protocol::Interruptible, true) => while self.step_mono::<true, true, true>() {},
            (true, Protocol::NonInterruptible, true) => {
                while self.step_mono::<true, false, true>() {}
            }
        }
        self.into_result()
    }

    /// The simulator's one trace tap: every instrumentation site funnels
    /// through here, stamped with the agenda clock. With the default
    /// [`NullSink`] the branch is statically false and the whole call —
    /// including the caller's argument computation, which is also guarded
    /// on `S::ENABLED` — compiles away.
    #[inline(always)]
    fn emit(&mut self, event: TraceEvent) {
        if S::ENABLED {
            self.sink.record(self.ws.agenda.now(), event);
        }
    }

    fn into_result(mut self) -> (RunResult, SimWorkspace, S) {
        let completion_times = std::mem::take(&mut self.ws.completion_times);
        let checkpoint_records = std::mem::take(&mut self.ws.checkpoint_records);
        let end_time = completion_times.last().copied().unwrap_or(0);
        let result = RunResult {
            end_time,
            tasks_per_node: self.ws.hot.iter().map(|n| n.tasks_computed).collect(),
            max_buffers_per_node: self
                .ws
                .hot
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.max_capacity()))
                .collect(),
            final_buffers_per_node: self
                .ws
                .hot
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.capacity()))
                .collect(),
            peak_held_per_node: self
                .ws
                .hot
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.peak_held()))
                .collect(),
            busy_compute_per_node: self.ws.hot.iter().map(|n| n.busy_compute).collect(),
            busy_link_per_node: self.ws.hot.iter().map(|n| n.busy_link).collect(),
            preemptions_per_node: self.ws.cold.iter().map(|c| c.preemptions).collect(),
            checkpoint_max_buffers: checkpoint_records,
            events_processed: self.events_processed,
            preemptions: self.preemptions,
            transfers_started: self.transfers_started,
            requests_sent: self.requests_sent,
            faults: self.fstats.clone(),
            arrivals: match self.arrivals.take() {
                Some(ar) => {
                    let mut completed_per_class = vec![0u64; ar.admitted_per_class.len()];
                    // Completions are matched to classes in admission order
                    // (units are interchangeable; exact when fault-free).
                    let served = (completion_times.len()).min(ar.admit_class.len());
                    for &class in &ar.admit_class[..served] {
                        completed_per_class[class as usize] += 1;
                    }
                    ArrivalStats {
                        submitted: ar.submitted,
                        admitted: ar.admitted,
                        rejected: ar.rejected,
                        deferrals: ar.deferrals,
                        peak_deferred: ar.peak_deferred,
                        admit_times: ar.admit_times,
                        dispatch_times: ar.dispatch_times,
                        completed_per_class,
                        admitted_per_class: ar.admitted_per_class,
                    }
                }
                None => ArrivalStats::default(),
            },
            completion_times,
        };
        (result, self.ws, self.sink)
    }

    // ----- event handling -------------------------------------------------

    fn handle<const FA: bool, const AR: bool>(&mut self, ev: Event) {
        let node = match ev {
            Event::ComputeDone { node }
            | Event::ComputeChain { node, .. }
            | Event::SendDone { node }
            | Event::TransferDone { node } => node,
            Event::Fault { index } => return self.on_fault(index),
            Event::OutageEnd { node } => return self.on_outage_end(node),
            Event::RequestTimeout { node } => return self.on_request_timeout(node),
            Event::Reissue { count } => return self.on_reissue(count),
            Event::Arrival => {
                debug_assert!(AR, "Arrival event without an arrival plan");
                return self.on_arrival();
            }
        };
        if self.ws.hot[node].departed || (FA && self.ws.hot[node].crashed) {
            // Stale event of a node that left (task already reclaimed) or
            // crashed (task already in the lost ledger).
            return;
        }
        match ev {
            Event::ComputeDone { node } => self.on_compute_done::<AR>(node),
            Event::ComputeChain { node, count } => self.on_compute_chain(node, count),
            Event::SendDone { node } => self.on_send_done::<FA>(node),
            Event::TransferDone { node } => self.on_transfer_done::<FA>(node),
            _ => unreachable!("dispatched above"),
        }
    }

    fn on_compute_done<const AR: bool>(&mut self, i: usize) {
        let started = self.ws.hot[i]
            .computing_since
            .take()
            .expect("ComputeDone on idle processor");
        self.ws.hot[i].busy_compute += self.ws.agenda.now() - started;
        self.ws.hot[i].tasks_computed += 1;
        self.emit(TraceEvent::ComputeFinish { node: i as u32 });
        self.record_completion::<AR>();
        if self.finished {
            return;
        }
        // §3.1 growth rule 3: computation completed with all buffers empty.
        let now = self.ws.agenda.now();
        if let Some(ledger) = &mut self.ws.hot[i].ledger {
            if ledger.try_grow(GrowthEvent::ComputeCompleted, true) {
                self.ws.cold[i].last_pressure = now;
            }
        }
        self.enqueue(i);
    }

    fn on_send_done<const FA: bool>(&mut self, i: usize) {
        let s = self.ws.sending[i]
            .take()
            .expect("SendDone without in-flight send");
        let now = self.ws.agenda.now();
        let duration = now - s.started_at;
        self.ws.hot[i].busy_link += duration;
        let child = self.ws.kid(i, s.child_pos);
        if FA && self.delivery_blocked(child) {
            // The receiver is dead or its link is dark: the sender
            // observes the reset, the task is lost. No latency sample —
            // nothing was delivered.
            self.on_delivery_failed(i, s.child_pos, child);
            self.enqueue(i);
            return;
        }
        self.ws.cold[i].observer.observe(s.child_pos, duration);
        self.refresh_kid_comm(i, s.child_pos);
        self.emit(TraceEvent::TransferComplete {
            node: i as u32,
            child: child as u32,
            work: duration,
        });
        self.deliver::<FA>(child);
        // §3.1 growth rule 2: send completed, buffers empty, child request
        // outstanding.
        let pressure = self.has_child_requests(i);
        if let Some(ledger) = &mut self.ws.hot[i].ledger {
            if ledger.try_grow(GrowthEvent::SendCompleted, pressure) {
                self.ws.cold[i].last_pressure = now;
            }
        }
        self.enqueue(i);
    }

    fn on_transfer_done<const FA: bool>(&mut self, i: usize) {
        let a = self.ws.active[i]
            .take()
            .expect("TransferDone without active transfer");
        self.ws.hot[i].busy_link += self.ws.agenda.now() - a.started_at;
        // The event firing means the remaining work ran to zero.
        let k = self.ws.kid_start[i] as usize + a.child_pos;
        self.ws.kid_slot[k]
            .as_mut()
            .expect("active transfer without slot")
            .remaining = 0;
        self.finish_slot::<FA>(i, a.child_pos);
        // Growth rule 2 applies to completed communications in general.
        let pressure = self.has_child_requests(i);
        let now = self.ws.agenda.now();
        if let Some(ledger) = &mut self.ws.hot[i].ledger {
            if ledger.try_grow(GrowthEvent::SendCompleted, pressure) {
                self.ws.cold[i].last_pressure = now;
            }
        }
        self.reconcile_link::<FA>(i);
        self.enqueue(i);
    }

    /// Completes the (already inactive) transfer in `child_pos`'s slot:
    /// records the observation and delivers the task.
    fn finish_slot<const FA: bool>(&mut self, i: usize, child_pos: usize) {
        let k = self.ws.kid_start[i] as usize + child_pos;
        let t = self.ws.kid_slot[k]
            .take()
            .expect("completing an empty slot");
        self.ws.slots_used[i] -= 1;
        debug_assert_eq!(
            t.remaining, 0,
            "transfer completed with {} timesteps of work left",
            t.remaining
        );
        let child = self.ws.kid_node[k] as usize;
        if FA && self.delivery_blocked(child) {
            self.on_delivery_failed(i, child_pos, child);
            return;
        }
        self.ws.cold[i].observer.observe(child_pos, t.total);
        self.refresh_kid_comm(i, child_pos);
        self.emit(TraceEvent::TransferComplete {
            node: i as u32,
            child: child as u32,
            work: t.total,
        });
        self.deliver::<FA>(child);
    }

    fn deliver<const FA: bool>(&mut self, child: usize) {
        if FA && self.ws.faults[child].orphaned {
            // The node had presumed its parent dead; a delivery proves
            // otherwise and it resumes requesting.
            self.ws.faults[child].orphaned = false;
            self.ws.faults[child].retry = 0;
        }
        let ledger = self.ws.hot[child]
            .ledger
            .as_mut()
            .expect("delivery to the root");
        ledger.task_arrived();
        if S::ENABLED {
            let (held, capacity) = (ledger.held(), ledger.capacity());
            self.emit(TraceEvent::BufferAcquire {
                node: child as u32,
                held,
                capacity,
            });
        }
        let ledger = self.ws.hot[child]
            .ledger
            .as_mut()
            .expect("delivery to the root");
        if let Some(FaultInjection::LeakTask { every }) = self.cfg.fault {
            self.faulty_deliveries += 1;
            if self.faulty_deliveries.is_multiple_of(every) {
                // The injected bug: the task vanishes from the buffer
                // without being computed or forwarded.
                ledger.take_task();
            }
        }
        if FA && self.ws.faults[child].dup_deliveries > 0 {
            // The network delivered a second copy of the task; the node
            // recognizes it by identity and drops it without touching the
            // ledger (at-least-once network, at-most-once buffer).
            self.ws.faults[child].dup_deliveries -= 1;
            self.fstats.duplicates_dropped += 1;
            self.emit(TraceEvent::DuplicateDrop { node: child as u32 });
        }
        self.enqueue(child);
    }

    fn record_completion<const AR: bool>(&mut self) {
        let now = self.ws.agenda.now();
        self.record_completion_at::<AR>(now);
    }

    /// [`Self::record_completion`] with an explicit completion time —
    /// elided chains replay intermediate completions at timestamps that
    /// predate the agenda clock.
    fn record_completion_at<const AR: bool>(&mut self, now: Time) {
        self.completed += 1;
        self.ws.completion_times.push(now);
        while self.next_checkpoint < self.cfg.checkpoints.len()
            && self.completed >= self.cfg.checkpoints[self.next_checkpoint]
        {
            let max = self
                .ws
                .hot
                .iter()
                .map(|n| n.ledger.as_ref().map_or(0, |l| l.max_capacity()))
                .max()
                .unwrap_or(0);
            self.ws
                .checkpoint_records
                .push((self.cfg.checkpoints[self.next_checkpoint], max));
            self.next_checkpoint += 1;
        }
        while self.next_change < self.cfg.changes.len()
            && self.cfg.changes[self.next_change].after_tasks <= self.completed
        {
            let ch = self.cfg.changes[self.next_change];
            self.next_change += 1;
            match ch.kind {
                ChangeKind::CommTime(c) => {
                    self.tree.set_comm_time(ch.node, c);
                    let i = ch.node.index();
                    if let Some(p) = self.ws.parent_of[i] {
                        if self.ws.cold[p].observer.is_oracle() {
                            let k = self.ws.kid_start[p] as usize + self.ws.child_pos[i];
                            self.ws.kid_comm[k] = c;
                        }
                    }
                }
                ChangeKind::ComputeTime(w) => {
                    self.tree.set_compute_time(ch.node, w);
                    let i = ch.node.index();
                    if let Some(p) = self.ws.parent_of[i] {
                        let k = self.ws.kid_start[p] as usize + self.ws.child_pos[i];
                        self.ws.kid_compute[k] = w;
                    }
                }
                ChangeKind::Join { comm, compute } => {
                    self.apply_join(ch.node, comm, compute);
                    continue;
                }
                ChangeKind::Leave => {
                    self.apply_leave(ch.node);
                    continue;
                }
            }
            // Re-examine the neighborhood under the new weights. In-flight
            // work keeps its old duration (a transfer/computation started
            // under the old conditions finishes under them).
            self.enqueue(ch.node.index());
            if let Some(p) = self.ws.parent_of[ch.node.index()] {
                self.enqueue(p);
            }
        }
        if AR {
            // A completion will shortly free queue room (the dispatch
            // already did): re-admit deferred arrivals up to the bound.
            self.drain_deferred();
        }
        if self.completed >= self.finish_target {
            self.finished = true;
        }
    }

    // ----- dynamic topology (extension) -------------------------------------

    /// A new node joins under `parent` — §3's scalability property in
    /// action: the parent only gains one more child to prioritize; no
    /// other node learns anything.
    fn apply_join(&mut self, parent: NodeId, comm: u64, compute: u64) {
        let p = parent.index();
        if p >= self.ws.hot.len() || self.ws.hot[p].departed || self.ws.hot[p].crashed {
            // The contact node is unknown or gone before the newcomer
            // arrived; in a real overlay the join simply fails.
            self.emit(TraceEvent::JoinDenied { parent: parent.0 });
            return;
        }
        let id = self.tree.add_child(parent, comm, compute);
        let i = id.index();
        debug_assert_eq!(i, self.ws.hot.len());
        self.ws.parent_of.push(Some(p));
        let pos = (self.ws.kid_start[p + 1] - self.ws.kid_start[p]) as usize;
        self.ws.child_pos.push(pos);
        // Splice the newcomer into the parent's CSR row. Joins are rare
        // scripted events; the O(total children) shift stays off the hot
        // path.
        let at = self.ws.kid_start[p + 1] as usize;
        self.ws.kid_node.insert(at, i as u32);
        self.ws.kid_pending.insert(at, 0);
        self.ws.kid_slot.insert(at, None);
        self.ws.kid_missed.insert(at, 0);
        self.ws.kid_gone.insert(at, false);
        self.ws.kid_compute.insert(at, compute);
        self.ws.cold[p].observer.add_child();
        let est = if self.ws.cold[p].observer.is_oracle() {
            comm
        } else {
            self.ws.cold[p].observer.estimate(pos)
        };
        self.ws.kid_comm.insert(at, est);
        for s in self.ws.kid_start[p + 1..].iter_mut() {
            *s += 1;
        }
        let end = *self.ws.kid_start.last().expect("kid_start is non-empty");
        self.ws.kid_start.push(end); // the newcomer has no children yet
        self.ws.hot.push(HotNode::fresh(i, &self.cfg));
        let mut cold = ColdNode::fresh(0, &self.cfg);
        cold.last_pressure = self.ws.agenda.now();
        self.ws.cold.push(cold);
        self.ws.sending.push(None);
        self.ws.active.push(None);
        self.ws.pending_sum.push(0);
        self.ws.slots_used.push(0);
        self.ws.faults.push(FaultRt::default());
        self.ws.queued.push(false);
        self.emit(TraceEvent::NodeJoin {
            node: i as u32,
            parent: p as u32,
        });
        // The newcomer requests its initial tasks; the parent re-evaluates.
        self.enqueue(i);
        self.enqueue(p);
    }

    /// The subtree rooted at `node` departs. Every task it holds — in
    /// buffers, on a processor, or in flight toward it — returns to the
    /// repository for re-dispatch.
    fn apply_leave(&mut self, node: NodeId) {
        let d0 = node.index();
        assert!(d0 < self.ws.hot.len(), "leave of unknown node {node}");
        assert!(d0 != 0, "the repository cannot leave");
        if self.ws.hot[d0].departed || self.ws.hot[d0].crashed {
            return; // already gone (a crash reclaimed nothing — the
                    // tasks are in the lost ledger, not handed back)
        }
        // Reclaim from the boundary edge: the still-present parent may be
        // mid-transfer toward the departing subtree root.
        let mut reclaimed: u64 = 0;
        let p = self.ws.parent_of[d0].expect("non-root has parent");
        let pos = self.ws.child_pos[d0];
        let kp = self.ws.kid_start[p] as usize + pos;
        let denied = self.ws.kid_pending[kp];
        self.ws.kid_pending[kp] = 0;
        self.ws.pending_sum[p] -= denied;
        if S::ENABLED && denied > 0 {
            self.emit(TraceEvent::RequestDeny {
                node: p as u32,
                child: d0 as u32,
                count: denied,
            });
        }
        if let Some(sending) = &self.ws.sending[p] {
            if sending.child_pos == pos {
                let s = self.ws.sending[p].take().expect("checked above");
                self.ws.hot[p].busy_link += self.ws.agenda.now() - s.started_at;
                self.ws.agenda.cancel(s.handle);
                reclaimed += 1;
            }
        }
        if let Some(active) = &self.ws.active[p] {
            if active.child_pos == pos {
                let a = self.ws.active[p].take().expect("checked above");
                self.ws.hot[p].busy_link += self.ws.agenda.now() - a.started_at;
                self.ws.agenda.cancel(a.handle);
            }
        }
        if self.ws.kid_slot[kp].take().is_some() {
            self.ws.slots_used[p] -= 1;
            reclaimed += 1;
        }

        // Walk the departing subtree, reclaiming everything it holds. A
        // branch that departed earlier was already reclaimed then (its
        // ledger still reports its old holdings) and must not be counted
        // again; its whole subtree is departed, so don't descend either.
        let mut stack = vec![d0];
        while let Some(d) = stack.pop() {
            if self.ws.hot[d].departed || self.ws.hot[d].crashed {
                // A crashed branch's holdings are in the lost ledger, not
                // reclaimable; its whole subtree is crashed too.
                continue;
            }
            let r = self.ws.krange(d);
            stack.extend(self.ws.kid_node[r.clone()].iter().map(|&c| c as usize));
            self.ws.hot[d].departed = true;
            if self.ws.hot[d].computing_since.take().is_some() {
                reclaimed += 1; // its ComputeDone event will be ignored
            }
            if self.ws.sending[d].take().is_some() {
                reclaimed += 1; // SendDone ignored; task vanishes with d
            }
            self.ws.active[d] = None;
            reclaimed += self.ws.kid_slot[r.clone()]
                .iter_mut()
                .filter_map(Option::take)
                .count() as u64;
            self.ws.slots_used[d] = 0;
            reclaimed += self.ws.hot[d].ledger.as_ref().map_or(0, |l| l.held()) as u64;
            self.ws.kid_pending[r].iter_mut().for_each(|q| *q = 0);
            self.ws.pending_sum[d] = 0;
            // Mirror the departure into the parent's candidate filter.
            if let Some(pp) = self.ws.parent_of[d] {
                let k = self.ws.kid_start[pp] as usize + self.ws.child_pos[d];
                self.ws.kid_gone[k] = true;
            }
        }

        self.emit(TraceEvent::NodeLeave {
            node: d0 as u32,
            reclaimed,
        });
        self.remaining += reclaimed;
        // The parent's link may have freed; the repository has new work.
        if matches!(self.cfg.protocol, Protocol::Interruptible) {
            if self.fault_active {
                self.reconcile_link::<true>(p);
            } else {
                self.reconcile_link::<false>(p);
            }
        }
        self.enqueue(p);
        self.enqueue(0);
    }

    // ----- service pass ---------------------------------------------------

    fn enqueue(&mut self, i: usize) {
        if !self.ws.queued[i] {
            self.ws.queued[i] = true;
            self.ws.service_queue.push_back(i);
        }
    }

    fn drain<const FA: bool, const IC: bool, const AR: bool>(&mut self) {
        debug_assert_eq!(IC, self.cfg.protocol == Protocol::Interruptible);
        while let Some(i) = self.ws.service_queue.pop_front() {
            self.ws.queued[i] = false;
            if self.finished {
                continue;
            }
            self.service::<FA, IC, AR>(i);
        }
    }

    fn service<const FA: bool, const IC: bool, const AR: bool>(&mut self, i: usize) {
        if self.ws.hot[i].departed || (FA && self.ws.hot[i].crashed) {
            return;
        }
        if self.cfg.self_first {
            self.fill_processor::<AR>(i);
            self.fill_link::<FA, IC, AR>(i);
        } else {
            self.fill_link::<FA, IC, AR>(i);
            self.fill_processor::<AR>(i);
        }
        self.issue_requests::<FA>(i);
    }

    fn fill_processor<const AR: bool>(&mut self, i: usize) {
        if self.ws.hot[i].computing_since.is_some() || !self.take_task::<AR>(i) {
            return;
        }
        self.ws.hot[i].computing_since = Some(self.ws.agenda.now());
        self.emit(TraceEvent::ComputeStart { node: i as u32 });
        let w = self.tree.compute_time(NodeId(i as u32));
        if self.elide_base && self.ws.service_queue.is_empty() {
            if let Some(count) = self.chain_len(i, w) {
                self.ws
                    .agenda
                    .schedule(count * w, Event::ComputeChain { node: i, count });
                return;
            }
        }
        self.ws.agenda.schedule(w, Event::ComputeDone { node: i });
    }

    /// Decides whether the computation just started at `i` can be elided
    /// into a macro-chain, and how long the chain may run. Returns
    /// `Some(k >= 2)` only when the unelided engine would provably do
    /// *nothing but* `k` back-to-back compute cycles at `i` over the
    /// span: the whole chain ends strictly before the next foreign
    /// agenda event (so no other event can observe or perturb the
    /// intermediate state), and every intermediate service cascade
    /// reduces to the bookkeeping `on_compute_chain` replays:
    ///
    /// - the service queue is empty, so after the current cascade the
    ///   simulation is at its service fixed point (every node's
    ///   `uncovered` is 0, every IC link carries its best occupied
    ///   slot), and nothing moves between chained completions;
    /// - at the root, the outbound link is inert: non-IC with the link
    ///   busy or no pending requests; IC with every requesting child's
    ///   slot already occupied (so `fill_slots` finds no candidate);
    /// - at a leaf, the parent cannot react to the per-take requests:
    ///   it holds no task, so its processor, link, and slot paths are
    ///   all no-ops (its own `uncovered` is 0 at the fixed point, so
    ///   the cascade stops there);
    /// - no platform change is pending (`next_change` exhausted) and —
    ///   via `elide_base` — buffers are fixed, so `record_completion`'s
    ///   checkpoint snapshots see frozen capacities.
    ///
    /// Interior nodes relay tasks (their own take triggers requests
    /// *and* they field children), so they are never elided.
    fn chain_len(&mut self, i: usize, w: u64) -> Option<u64> {
        if self.next_change < self.cfg.changes.len() || w == 0 {
            return None;
        }
        let spare = if i == 0 {
            let inert = match self.cfg.protocol {
                Protocol::NonInterruptible => {
                    self.ws.sending[0].is_some() || self.ws.pending_sum[0] == 0
                }
                Protocol::Interruptible => {
                    self.ws.pending_sum[0] == 0
                        || self.ws.krange(0).all(|k| {
                            self.ws.kid_pending[k] == 0
                                || self.ws.kid_slot[k].is_some()
                                || self.ws.kid_gone[k]
                        })
                }
            };
            if !inert {
                return None;
            }
            self.remaining
        } else {
            if self.ws.kid_start[i + 1] != self.ws.kid_start[i] {
                return None; // interior node
            }
            let p = self.ws.parent_of[i].expect("non-root has parent");
            if self.has_task(p) {
                return None;
            }
            self.ws.hot[i]
                .ledger
                .as_ref()
                .expect("non-root has ledger")
                .held() as u64
        };
        let bound = (1 + spare).min(self.cfg.total_tasks - self.completed);
        if bound < 2 {
            return None;
        }
        let t = self.ws.agenda.now();
        let count = match self.ws.agenda.peek_time() {
            None => bound,
            // Largest k with t + k*w < next foreign event.
            Some(tn) => ((tn - 1).saturating_sub(t) / w).min(bound),
        };
        (count >= 2).then_some(count)
    }

    /// Handles an elision macro-event: replays the `count` chained
    /// completions' bookkeeping at their original timestamps. By
    /// `chain_len`'s proof obligation the unelided engine would have
    /// performed exactly this — each intermediate service cascade is a
    /// no-op beyond the processor refill (and, for a leaf, the per-take
    /// request to a parent that cannot respond).
    fn on_compute_chain(&mut self, i: usize, count: u64) {
        // `elide_base` is false whenever an arrival plan is active, so
        // chains never carry open-world bookkeeping.
        debug_assert!(self.arrivals.is_none(), "elision under arrivals");
        let w = self.tree.compute_time(NodeId(i as u32));
        let start = self.ws.agenda.now() - count * w;
        debug_assert_eq!(self.ws.hot[i].computing_since, Some(start));
        self.events_processed += count - 1;
        self.elided += count - 1;
        for j in 1..=count {
            self.ws.hot[i].computing_since = None;
            self.ws.hot[i].busy_compute += w;
            self.ws.hot[i].tasks_computed += 1;
            self.record_completion_at::<false>(start + j * w);
            if self.finished {
                return;
            }
            if j < count {
                self.chain_take(i);
                self.ws.hot[i].computing_since = Some(start + j * w);
            }
        }
        self.enqueue(i);
    }

    /// The take half of an elided intermediate service: pull the next
    /// task and, at a leaf, cover the freed buffer with a request —
    /// `take_task` + `issue_requests` minus the paths `chain_len` proved
    /// dead (growth, decay, traces, faults, parent reaction).
    fn chain_take(&mut self, i: usize) {
        if i == 0 {
            self.remaining -= 1;
            return;
        }
        let ledger = self.ws.hot[i].ledger.as_mut().expect("non-root has ledger");
        ledger.take_task();
        let n = ledger.uncovered();
        debug_assert!(n > 0, "chained take must free a buffer to cover");
        ledger.note_requests_sent(n);
        self.requests_sent += n as u64;
        let p = self.ws.parent_of[i].expect("non-root has parent");
        let k = self.ws.kid_start[p] as usize + self.ws.child_pos[i];
        self.ws.kid_pending[k] += n;
        self.ws.pending_sum[p] += n;
    }

    /// Takes one task for local use (compute or send start). Returns false
    /// if none is available. Applies §3.1 growth rule 1 on the transition
    /// to empty. Under `AR`, a root take is a *dispatch*: the unit leaves
    /// the admission queue and its wait ends (latency accounting).
    fn take_task<const AR: bool>(&mut self, i: usize) -> bool {
        if i == 0 {
            if self.remaining == 0 {
                return false;
            }
            self.remaining -= 1;
            if AR {
                let now = self.ws.agenda.now();
                let ar = self.arrivals.as_deref_mut().expect("AR without runtime");
                ar.dispatch_times.push(now);
            }
            return true;
        }
        let pressure = self.has_child_requests(i);
        let now = self.ws.agenda.now();
        let ledger = self.ws.hot[i].ledger.as_mut().expect("non-root has ledger");
        if ledger.held() == 0 {
            return false;
        }
        ledger.take_task();
        // Occupancy at the instant of removal, before any growth below.
        let (held, capacity) = (ledger.held(), ledger.capacity());
        if ledger.try_grow(GrowthEvent::ChildRequestPressure, pressure) {
            self.ws.cold[i].last_pressure = now;
        }
        if S::ENABLED {
            self.emit(TraceEvent::BufferRelease {
                node: i as u32,
                held,
                capacity,
            });
        }
        true
    }

    fn has_task(&self, i: usize) -> bool {
        if i == 0 {
            self.remaining > 0
        } else {
            self.ws.hot[i].ledger.as_ref().is_some_and(|l| l.held() > 0)
        }
    }

    fn has_child_requests(&self, i: usize) -> bool {
        self.ws.pending_sum[i] > 0
    }

    /// The selection view of `i`'s child at `pos`, read straight from the
    /// CSR caches (`kid_comm` holds exactly what the observer/tree would
    /// say; see its field docs).
    #[inline(always)]
    fn child_info(&self, i: usize, pos: usize) -> ChildInfo {
        let k = self.ws.kid_start[i] as usize + pos;
        ChildInfo {
            index: pos,
            comm_estimate: self.ws.kid_comm[k],
            compute_estimate: self.ws.kid_compute[k],
        }
    }

    /// Re-derives the cached comm estimate for `i`'s child at `pos` after
    /// an observation landed.
    #[inline(always)]
    fn refresh_kid_comm(&mut self, i: usize, pos: usize) {
        let ob = &self.ws.cold[i].observer;
        if !ob.is_oracle() {
            let k = self.ws.kid_start[i] as usize + pos;
            self.ws.kid_comm[k] = ob.estimate(pos);
        }
    }

    fn fill_link<const FA: bool, const IC: bool, const AR: bool>(&mut self, i: usize) {
        if self.ws.kid_start[i + 1] == self.ws.kid_start[i] {
            return; // leaves have no outbound link work, ever
        }
        if IC {
            self.fill_slots::<FA, AR>(i);
            self.reconcile_link::<FA>(i);
        } else {
            self.fill_link_nonic::<FA, AR>(i);
        }
    }

    fn fill_link_nonic<const FA: bool, const AR: bool>(&mut self, i: usize) {
        if self.ws.sending[i].is_some() || self.ws.pending_sum[i] == 0 || !self.has_task(i) {
            return;
        }
        let mut candidates = std::mem::take(&mut self.ws.candidates);
        candidates.clear();
        for (pos, k) in self.ws.krange(i).enumerate() {
            if self.ws.kid_pending[k] > 0
                && (!FA || self.ws.kid_missed[k] < self.dead_threshold)
                && !self.ws.kid_gone[k]
            {
                candidates.push(ChildInfo {
                    index: pos,
                    comm_estimate: self.ws.kid_comm[k],
                    compute_estimate: self.ws.kid_compute[k],
                });
            }
        }
        let chosen = self.ws.cold[i].selector.select(&candidates);
        self.ws.candidates = candidates;
        let Some(pos) = chosen else {
            return;
        };
        if !self.take_task::<AR>(i) {
            return;
        }
        let k = self.ws.kid_start[i] as usize + pos;
        self.ws.kid_pending[k] -= 1;
        self.ws.pending_sum[i] -= 1;
        let child = self.ws.kid_node[k] as usize;
        let c = self.tree.comm_time(NodeId(child as u32));
        let now = self.ws.agenda.now();
        self.transfers_started += 1;
        self.emit(TraceEvent::TransferStart {
            node: i as u32,
            child: child as u32,
            work: c,
        });
        let handle = self.ws.agenda.schedule(c, Event::SendDone { node: i });
        self.ws.sending[i] = Some(Sending {
            child_pos: pos,
            started_at: now,
            handle,
        });
    }

    /// IC: delegate buffered tasks into empty slots of requesting
    /// children, best-priority first, while tasks last.
    fn fill_slots<const FA: bool, const AR: bool>(&mut self, i: usize) {
        if self.ws.pending_sum[i] == 0 {
            return; // no requesting child, so no candidate either
        }
        let mut candidates = std::mem::take(&mut self.ws.candidates);
        loop {
            if self.ws.pending_sum[i] == 0 || !self.has_task(i) {
                break;
            }
            candidates.clear();
            for (pos, k) in self.ws.krange(i).enumerate() {
                if self.ws.kid_pending[k] > 0
                    && self.ws.kid_slot[k].is_none()
                    && (!FA || self.ws.kid_missed[k] < self.dead_threshold)
                    && !self.ws.kid_gone[k]
                {
                    candidates.push(ChildInfo {
                        index: pos,
                        comm_estimate: self.ws.kid_comm[k],
                        compute_estimate: self.ws.kid_compute[k],
                    });
                }
            }
            let Some(pos) = self.ws.cold[i].selector.select(&candidates) else {
                break;
            };
            if !self.take_task::<AR>(i) {
                break;
            }
            let k = self.ws.kid_start[i] as usize + pos;
            self.ws.kid_pending[k] -= 1;
            self.ws.pending_sum[i] -= 1;
            self.transfers_started += 1;
            let child = self.ws.kid_node[k] as usize;
            let c = self.tree.comm_time(NodeId(child as u32));
            self.ws.kid_slot[k] = Some(SlotTransfer {
                remaining: c,
                total: c,
                started: false,
            });
            self.ws.slots_used[i] += 1;
        }
        self.ws.candidates = candidates;
    }

    /// IC: ensure the link transmits the highest-priority occupied slot,
    /// preempting if a better slot appeared (§3.2).
    fn reconcile_link<const FA: bool>(&mut self, i: usize) {
        // Fast paths on the occupancy count: nothing to transmit, or the
        // active transfer is the only occupied slot (then the full scan
        // below would find best == active and do nothing).
        let used = self.ws.slots_used[i];
        if used == 0 {
            debug_assert!(self.ws.active[i].is_none(), "active without slots");
            return;
        }
        if used == 1 && self.ws.active[i].is_some() {
            return;
        }
        let mut candidates = std::mem::take(&mut self.ws.candidates);
        candidates.clear();
        for (pos, k) in self.ws.krange(i).enumerate() {
            if self.ws.kid_slot[k].is_some() {
                candidates.push(ChildInfo {
                    index: pos,
                    comm_estimate: self.ws.kid_comm[k],
                    compute_estimate: self.ws.kid_compute[k],
                });
            }
        }
        let best = self.ws.cold[i].selector.best(&candidates);
        self.ws.candidates = candidates;
        match (&self.ws.active[i], best) {
            (_, None) => {
                debug_assert!(self.ws.active[i].is_none(), "active without slots");
            }
            (None, Some(b)) => self.activate(i, b),
            (Some(a), Some(b)) if b != a.child_pos => {
                let a_info = self.child_info(i, a.child_pos);
                let b_info = self.child_info(i, b);
                if self.ws.cold[i].selector.outranks(&b_info, &a_info) {
                    self.preempt::<FA>(i);
                    // The preempted transfer may have completed at this
                    // exact instant; re-rank rather than assuming `b`.
                    self.reconcile_link::<FA>(i);
                }
            }
            _ => {}
        }
    }

    fn activate(&mut self, i: usize, pos: usize) {
        debug_assert!(self.ws.active[i].is_none());
        let k = self.ws.kid_start[i] as usize + pos;
        let slot = self.ws.kid_slot[k]
            .as_mut()
            .expect("activating an empty slot");
        let remaining = slot.remaining;
        let first = !slot.started;
        let total = slot.total;
        slot.started = true;
        if S::ENABLED {
            let child = self.ws.kid_node[k];
            self.emit(if first {
                TraceEvent::TransferStart {
                    node: i as u32,
                    child,
                    work: total,
                }
            } else {
                TraceEvent::TransferResume {
                    node: i as u32,
                    child,
                    remaining,
                }
            });
        }
        let now = self.ws.agenda.now();
        let handle = self
            .ws
            .agenda
            .schedule(remaining, Event::TransferDone { node: i });
        self.ws.active[i] = Some(ActiveTransfer {
            child_pos: pos,
            started_at: now,
            remaining_at_start: remaining,
            handle,
        });
    }

    /// Shelves the active transfer (or finishes it inline if it has
    /// exactly zero work left at this instant).
    fn preempt<const FA: bool>(&mut self, i: usize) {
        self.preemptions += 1;
        self.ws.cold[i].preemptions += 1;
        let a = self.ws.active[i].take().expect("preempting idle link");
        self.ws.agenda.cancel(a.handle);
        let elapsed = self.ws.agenda.now() - a.started_at;
        self.ws.hot[i].busy_link += elapsed;
        let remaining = a
            .remaining_at_start
            .checked_sub(elapsed)
            .expect("transfer ran past its completion");
        let k = self.ws.kid_start[i] as usize + a.child_pos;
        let slot = self.ws.kid_slot[k]
            .as_mut()
            .expect("active transfer without slot");
        slot.remaining = remaining;
        if S::ENABLED {
            let child = self.ws.kid_node[k];
            self.emit(TraceEvent::TransferPreempt {
                node: i as u32,
                child,
                remaining,
            });
        }
        if remaining == 0 {
            self.finish_slot::<FA>(i, a.child_pos);
        }
    }

    // ----- requests -------------------------------------------------------

    fn issue_requests<const FA: bool>(&mut self, i: usize) {
        if i == 0 {
            return;
        }
        let now = self.ws.agenda.now();
        // Decay (extension): reclaim an idle grown buffer after a quiet
        // window, before covering it with a fresh request.
        let last_pressure = self.ws.cold[i].last_pressure;
        if let Some(ledger) = &mut self.ws.hot[i].ledger {
            if let Some(window) = ledger.decay_after() {
                if now.saturating_sub(last_pressure) >= window && ledger.try_shrink() {
                    self.ws.cold[i].last_pressure = now;
                }
            }
        }
        let ledger = self.ws.hot[i].ledger.as_mut().expect("non-root has ledger");
        let n = ledger.uncovered();
        if n == 0 {
            return;
        }
        if FA && self.ws.faults[i].orphaned {
            // Retry budget exhausted: presumed-dead parent, stop asking.
            return;
        }
        let ledger = self.ws.hot[i].ledger.as_mut().expect("non-root has ledger");
        ledger.note_requests_sent(n);
        self.requests_sent += n as u64;
        self.emit(TraceEvent::Request {
            node: i as u32,
            count: n,
        });
        let parent = self.ws.parent_of[i].expect("non-root has parent");
        let pos = self.ws.child_pos[i];
        if FA && self.request_lost(i, parent) {
            // The batch vanished in the network: still covered here (the
            // node believes it asked), unknown to the parent. The timeout
            // withdraws and re-sends it.
            self.ws.faults[i].lost_requests += n;
            self.fstats.requests_dropped += n as u64;
            self.emit(TraceEvent::RequestLoss {
                node: i as u32,
                count: n,
            });
            self.arm_request_timeout(i);
            return;
        }
        // Delivered — requests are instantaneous control messages, so
        // delivery doubles as the acknowledgement.
        if FA {
            self.ws.faults[i].retry = 0;
        }
        let k = self.ws.kid_start[parent] as usize + pos;
        self.ws.kid_pending[k] += n;
        self.ws.pending_sum[parent] += n;
        if FA && self.ws.kid_missed[k] >= self.dead_threshold {
            // Heard from a child previously presumed dead: revise.
            self.ws.kid_missed[k] = 0;
            self.fstats.children_revived += 1;
            self.emit(TraceEvent::ChildRevived {
                node: parent as u32,
                child: i as u32,
            });
        }
        self.enqueue(parent);
    }

    // ----- fault model & recovery (extension) -------------------------------

    /// A scheduled environment fault strikes.
    #[cold]
    #[inline(never)]
    fn on_fault(&mut self, index: usize) {
        let f = self
            .cfg
            .fault_plan
            .as_ref()
            .expect("fault without plan")
            .faults[index];
        self.fstats.faults_injected += 1;
        let node = f.node.index();
        match f.kind {
            FaultKind::RequestLoss { batches } => {
                if !self.ws.hot[node].departed && !self.ws.hot[node].crashed {
                    self.ws.faults[node].drop_batches += batches;
                }
            }
            FaultKind::DuplicateDelivery { copies } => {
                if !self.ws.hot[node].departed && !self.ws.hot[node].crashed {
                    self.ws.faults[node].dup_deliveries += copies;
                }
            }
            FaultKind::TransferAbort => self.abort_boundary(node, Nack::Instant),
            FaultKind::LinkOutage { duration } => self.on_link_outage(node, duration),
            FaultKind::Crash => self.apply_crash(node),
        }
    }

    /// Whether `i`'s uplink is currently inside an outage window.
    fn link_down(&self, i: usize) -> bool {
        self.ws.faults[i].outage_until > self.ws.agenda.now()
    }

    /// Whether a completing transfer toward `child` can actually land.
    fn delivery_blocked(&self, child: usize) -> bool {
        self.ws.hot[child].crashed || self.link_down(child)
    }

    /// A transfer from `i` toward child position `pos` completed its
    /// transmission but could not be delivered (receiver crashed or its
    /// link is dark): the task is lost and the sender notices the missed
    /// acknowledgement.
    #[cold]
    #[inline(never)]
    fn on_delivery_failed(&mut self, i: usize, pos: usize, child: usize) {
        self.emit(TraceEvent::TransferAbort {
            node: i as u32,
            child: child as u32,
        });
        self.fstats.transfer_aborts += 1;
        self.lose_tasks(1);
        self.note_missed_ack(i, pos);
        let c = &self.ws.hot[child];
        if !c.crashed && !c.departed {
            // Live but unreachable: the covering request is voided when
            // the link comes back.
            self.ws.faults[child].pending_nacks += 1;
        }
    }

    /// Tears down the in-flight transfer (if any) from `child`'s parent
    /// toward `child`. Parked IC slots are left alone — they fail at
    /// delivery time if the child is still unreachable then.
    #[cold]
    #[inline(never)]
    fn abort_boundary(&mut self, child: usize, nack: Nack) {
        if self.ws.hot[child].departed {
            return;
        }
        let Some(p) = self.ws.parent_of[child] else {
            return;
        };
        if self.ws.hot[p].departed || self.ws.hot[p].crashed {
            return;
        }
        let pos = self.ws.child_pos[child];
        let now = self.ws.agenda.now();
        let mut aborted = false;
        if let Some(s) = &self.ws.sending[p] {
            if s.child_pos == pos {
                let s = self.ws.sending[p].take().expect("checked above");
                self.ws.hot[p].busy_link += now - s.started_at;
                self.ws.agenda.cancel(s.handle);
                aborted = true;
            }
        }
        if let Some(a) = &self.ws.active[p] {
            if a.child_pos == pos {
                let a = self.ws.active[p].take().expect("checked above");
                self.ws.hot[p].busy_link += now - a.started_at;
                self.ws.agenda.cancel(a.handle);
                let k = self.ws.kid_start[p] as usize + pos;
                let t = self.ws.kid_slot[k].take();
                debug_assert!(t.is_some(), "active transfer without slot");
                self.ws.slots_used[p] -= 1;
                aborted = true;
            }
        }
        if !aborted {
            return;
        }
        self.emit(TraceEvent::TransferAbort {
            node: p as u32,
            child: child as u32,
        });
        self.fstats.transfer_aborts += 1;
        self.lose_tasks(1);
        self.note_missed_ack(p, pos);
        match nack {
            Nack::Instant => {
                // The child sees its inbound transfer reset: the covering
                // request is void, so it re-requests immediately.
                self.ws.hot[child]
                    .ledger
                    .as_mut()
                    .expect("non-root has ledger")
                    .uncover(1);
                self.enqueue(child);
            }
            Nack::Deferred => self.ws.faults[child].pending_nacks += 1,
            Nack::None => {}
        }
        if matches!(self.cfg.protocol, Protocol::Interruptible) {
            // Faults are the only path here, so the plan is active.
            self.reconcile_link::<true>(p);
        }
        self.enqueue(p);
    }

    /// `node`'s uplink goes dark for `duration` timesteps. Overlapping
    /// outages extend the window to the furthest end.
    #[cold]
    #[inline(never)]
    fn on_link_outage(&mut self, node: usize, duration: u64) {
        if self.ws.hot[node].departed || self.ws.hot[node].crashed {
            return;
        }
        let until = self.ws.agenda.now() + duration;
        if until > self.ws.faults[node].outage_until {
            self.ws.faults[node].outage_until = until;
            self.ws.agenda.schedule(duration, Event::OutageEnd { node });
        }
        self.emit(TraceEvent::LinkDown {
            node: node as u32,
            until: self.ws.faults[node].outage_until,
        });
        // Anything mid-flight toward the node is torn down; the nack
        // cannot cross the dark link until the outage ends.
        self.abort_boundary(node, Nack::Deferred);
    }

    /// `node`'s outage window ended: deferred nacks resolve and the node
    /// re-requests for the newly voided coverage.
    #[cold]
    #[inline(never)]
    fn on_outage_end(&mut self, node: usize) {
        if self.ws.hot[node].departed || self.ws.hot[node].crashed {
            return;
        }
        if self.ws.agenda.now() < self.ws.faults[node].outage_until {
            return; // superseded by a longer overlapping outage
        }
        let k = self.ws.faults[node].pending_nacks;
        self.ws.faults[node].pending_nacks = 0;
        if k > 0 {
            self.ws.hot[node]
                .ledger
                .as_mut()
                .expect("non-root has ledger")
                .uncover(k);
        }
        self.emit(TraceEvent::LinkUp { node: node as u32 });
        self.enqueue(node);
    }

    /// The subtree rooted at `d0` dies abruptly. Unlike a graceful
    /// [`apply_leave`](Self::apply_leave), nothing is handed back: every
    /// task the subtree holds is destroyed and enters the repository's
    /// reissue ledger after the detection latency, and the parent is NOT
    /// told — it keeps its pending requests and keeps delegating until
    /// missed acks cross the threshold (locality: no global knowledge).
    #[cold]
    #[inline(never)]
    fn apply_crash(&mut self, d0: usize) {
        if self.ws.hot[d0].departed || self.ws.hot[d0].crashed {
            return;
        }
        // The boundary in-flight transfer aborts immediately: the sender's
        // link observes the reset (one missed ack right away).
        self.abort_boundary(d0, Nack::None);
        let mut lost: u64 = 0;
        let mut stack = vec![d0];
        while let Some(d) = stack.pop() {
            if self.ws.hot[d].departed || self.ws.hot[d].crashed {
                // Already-gone branches hold nothing (reclaimed or lost
                // when they went); don't descend or count them again.
                continue;
            }
            let r = self.ws.krange(d);
            stack.extend(self.ws.kid_node[r.clone()].iter().map(|&c| c as usize));
            self.ws.hot[d].crashed = true;
            let timeout = self.ws.faults[d].timeout.take();
            if self.ws.hot[d].computing_since.take().is_some() {
                lost += 1;
            }
            let sending = self.ws.sending[d].take();
            if sending.is_some() {
                lost += 1;
            }
            let active = self.ws.active[d].take();
            lost += self.ws.kid_slot[r.clone()]
                .iter_mut()
                .filter_map(Option::take)
                .count() as u64;
            self.ws.slots_used[d] = 0;
            lost += self.ws.hot[d].ledger.as_ref().map_or(0, |l| l.held()) as u64;
            self.ws.kid_pending[r].iter_mut().for_each(|q| *q = 0);
            self.ws.pending_sum[d] = 0;
            if let Some(h) = timeout {
                self.ws.agenda.cancel(h);
            }
            if let Some(s) = sending {
                self.ws.agenda.cancel(s.handle);
            }
            if let Some(a) = active {
                self.ws.agenda.cancel(a.handle);
            }
        }
        self.emit(TraceEvent::NodeCrash {
            node: d0 as u32,
            lost,
        });
        self.fstats.crashes += 1;
        self.fstats.last_crash_time = Some(self.ws.agenda.now());
        self.lose_tasks(lost);
    }

    /// `n` tasks were destroyed by a fault: they enter the lost ledger and
    /// the repository re-injects them after the detection latency.
    #[cold]
    #[inline(never)]
    fn lose_tasks(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.lost_pending += n;
        self.fstats.tasks_lost += n;
        self.ws
            .agenda
            .schedule(self.recovery.reissue_delay, Event::Reissue { count: n });
    }

    /// The repository's detection latency elapsed: `count` lost tasks
    /// re-enter the remaining pool (exactly once — conservation holds).
    #[cold]
    #[inline(never)]
    fn on_reissue(&mut self, count: u64) {
        debug_assert!(self.lost_pending >= count, "reissue of untracked tasks");
        self.lost_pending -= count;
        if matches!(self.cfg.fault, Some(FaultInjection::SwallowReissue)) {
            // The injected bug: the repository forgets the lost tasks.
            // Task conservation breaks and the checker must say so.
            return;
        }
        self.remaining += count;
        self.fstats.tasks_reissued += count;
        self.emit(TraceEvent::TaskReissue { count });
        self.enqueue(0);
    }

    // ----- open-world arrivals (extension) ----------------------------------

    /// The arrival cursor's chained event fired: inject every arrival
    /// due now, then re-chain for the next instant. Arrivals are rare
    /// relative to protocol events, so this stays off the inline path.
    #[cold]
    #[inline(never)]
    fn on_arrival(&mut self) {
        let now = self.ws.agenda.now();
        loop {
            let ar = self.arrivals.as_deref_mut().expect("AR without runtime");
            let Some(&a) = ar.schedule.get(ar.cursor) else {
                return; // schedule exhausted; no re-chain
            };
            if a.at > now {
                self.ws.agenda.schedule(a.at - now, Event::Arrival);
                return;
            }
            let idx = ar.cursor as u32;
            ar.cursor += 1;
            ar.submitted += a.units;
            self.emit(TraceEvent::TaskArrival {
                class: a.class,
                units: a.units,
            });
            self.submit_arrival(a, idx);
        }
    }

    /// Admission control for one arrival: admit within the queue bound,
    /// otherwise shed (`Drop`) or backpressure (`Defer`).
    fn submit_arrival(&mut self, a: Arrival, idx: u32) {
        let ar = self.arrivals.as_deref_mut().expect("AR without runtime");
        if self.remaining + a.units <= ar.queue_cap {
            self.admit_units(a.class, a.units);
            return;
        }
        match ar.policy {
            AdmissionPolicy::Drop => {
                ar.rejected += a.units;
                self.finish_target -= a.units;
                self.emit(TraceEvent::TaskReject {
                    class: a.class,
                    units: a.units,
                });
                // The shed units may have been the last outstanding work.
                if self.completed >= self.finish_target {
                    self.finished = true;
                }
            }
            AdmissionPolicy::Defer => {
                if let Some(FaultInjection::LeakQueuedTask { every }) = self.cfg.fault {
                    ar.leak_tick += 1;
                    if ar.leak_tick.is_multiple_of(every) {
                        // The injected bug: the arrival is counted as
                        // submitted but silently dropped — neither queued,
                        // admitted, nor rejected. Open-world conservation
                        // breaks and the checker must say so.
                        return;
                    }
                }
                ar.deferred.push_back(idx);
                ar.deferred_units += a.units;
                ar.deferrals += 1;
                ar.peak_deferred = ar.peak_deferred.max(ar.deferred_units);
                let waiting = ar.deferred_units;
                self.emit(TraceEvent::TaskDefer {
                    class: a.class,
                    units: a.units,
                    waiting,
                });
            }
        }
    }

    /// `units` tasks of `class` enter the repository queue.
    fn admit_units(&mut self, class: u32, units: u64) {
        let now = self.ws.agenda.now();
        self.remaining += units;
        let queued = self.remaining;
        let ar = self.arrivals.as_deref_mut().expect("AR without runtime");
        ar.admitted += units;
        ar.admitted_per_class[class as usize] += units;
        for _ in 0..units {
            ar.admit_times.push(now);
            ar.admit_class.push(class);
        }
        self.emit(TraceEvent::TaskAdmit {
            class,
            units,
            queued,
        });
        self.enqueue(0);
    }

    /// Re-admits deferred arrivals while the queue bound allows (called
    /// at each completion in open-world mode — dispatches have already
    /// freed the room by then).
    #[cold]
    #[inline(never)]
    fn drain_deferred(&mut self) {
        loop {
            let ar = self.arrivals.as_deref_mut().expect("AR without runtime");
            let Some(&idx) = ar.deferred.front() else {
                return;
            };
            let a = ar.schedule[idx as usize];
            if self.remaining + a.units > ar.queue_cap {
                return;
            }
            ar.deferred.pop_front();
            ar.deferred_units -= a.units;
            self.admit_units(a.class, a.units);
        }
    }

    /// `i`'s request timeout fired: withdraw any lost requests and re-send
    /// them, or give up after the retry budget (a later successful
    /// delivery revives the node).
    #[cold]
    #[inline(never)]
    fn on_request_timeout(&mut self, i: usize) {
        self.ws.faults[i].timeout = None;
        if self.ws.hot[i].departed || self.ws.hot[i].crashed {
            return;
        }
        let lost = self.ws.faults[i].lost_requests;
        if lost == 0 {
            // Everything sent since arming was acknowledged.
            self.ws.faults[i].retry = 0;
            return;
        }
        self.ws.faults[i].retry += 1;
        let retry = self.ws.faults[i].retry;
        self.ws.faults[i].lost_requests = 0;
        self.ws.hot[i]
            .ledger
            .as_mut()
            .expect("non-root has ledger")
            .uncover(lost);
        if retry > self.recovery.max_retries {
            self.ws.faults[i].orphaned = true;
            self.fstats.gave_up += 1;
            return;
        }
        self.fstats.retries += 1;
        self.emit(TraceEvent::RequestRetry {
            node: i as u32,
            retry,
            count: lost,
        });
        self.enqueue(i);
    }

    /// Arms `i`'s request timeout (one outstanding at a time) with
    /// exponential backoff and deterministic seeded jitter.
    #[cold]
    #[inline(never)]
    fn arm_request_timeout(&mut self, i: usize) {
        if self.ws.faults[i].timeout.is_some() {
            return;
        }
        let retry = self.ws.faults[i].retry;
        let base = self.recovery.request_timeout;
        let shift = retry.min(self.recovery.backoff_cap).min(32);
        let jitter =
            split_seed(self.fault_seed, ((i as u64) << 32) | retry as u64) % (base / 4 + 1);
        let deadline = base.saturating_mul(1u64 << shift).saturating_add(jitter);
        let handle = self
            .ws
            .agenda
            .schedule(deadline, Event::RequestTimeout { node: i });
        self.ws.faults[i].timeout = Some(handle);
    }

    /// A transfer from `i` toward child position `pos` went unacknowledged;
    /// at the threshold the child is presumed dead.
    #[cold]
    #[inline(never)]
    fn note_missed_ack(&mut self, i: usize, pos: usize) {
        let k = self.ws.kid_start[i] as usize + pos;
        if self.ws.kid_missed[k] >= self.dead_threshold {
            return;
        }
        self.ws.kid_missed[k] += 1;
        if self.ws.kid_missed[k] >= self.dead_threshold {
            self.declare_dead(i, pos);
        }
    }

    /// `i` declares child position `pos` dead: its outstanding requests are
    /// discarded and it stops being a delegation candidate until it is
    /// heard from again. The belief may be wrong (outage, not crash) — a
    /// live child must not starve on requests the parent silently dropped,
    /// so it is nacked like an aborted transfer.
    #[cold]
    #[inline(never)]
    fn declare_dead(&mut self, i: usize, pos: usize) {
        let k = self.ws.kid_start[i] as usize + pos;
        let child = self.ws.kid_node[k] as usize;
        self.fstats.children_declared_dead += 1;
        self.emit(TraceEvent::ChildDead {
            node: i as u32,
            child: child as u32,
        });
        let denied = self.ws.kid_pending[k];
        if denied == 0 {
            return;
        }
        self.ws.kid_pending[k] = 0;
        self.ws.pending_sum[i] -= denied;
        self.emit(TraceEvent::RequestDeny {
            node: i as u32,
            child: child as u32,
            count: denied,
        });
        if self.ws.hot[child].crashed || self.ws.hot[child].departed {
            return;
        }
        if self.link_down(child) {
            self.ws.faults[child].pending_nacks += denied;
        } else {
            self.ws.hot[child]
                .ledger
                .as_mut()
                .expect("non-root has ledger")
                .uncover(denied);
            self.enqueue(child);
        }
    }

    /// Whether the request batch `i` is sending right now gets lost
    /// (scheduled drop, dark uplink, or dead parent).
    #[cold]
    #[inline(never)]
    fn request_lost(&mut self, i: usize, parent: usize) -> bool {
        if self.ws.faults[i].drop_batches > 0 {
            self.ws.faults[i].drop_batches -= 1;
            return true;
        }
        self.link_down(i) || self.ws.hot[parent].crashed
    }

    // ----- introspection (for tests) ---------------------------------------

    /// Tasks completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.ws.agenda.now()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // ----- snapshot / restore (see `snapshot.rs`) ---------------------------

    /// Captures the complete mid-run state. Valid at any quiescent
    /// point: before the first [`Simulation::step`], between steps, or
    /// after the run finished. The snapshot is independent of this
    /// simulation — see [`SimSnapshot`] for resuming, forking, and
    /// serialization.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            tree: self.tree.clone(),
            cfg: self.cfg.clone(),
            ws: self.ws.snapshot(),
            cur: CursorSnapshot {
                remaining: self.remaining,
                completed: self.completed,
                next_checkpoint: self.next_checkpoint as u64,
                next_change: self.next_change as u64,
                events_processed: self.events_processed,
                preemptions: self.preemptions,
                transfers_started: self.transfers_started,
                requests_sent: self.requests_sent,
                started: self.started,
                finished: self.finished,
                check_last_now: self.check_last_now,
                events_since_sweep: self.events_since_sweep,
                faulty_deliveries: self.faulty_deliveries,
                fault_active: self.fault_active,
                recovery: self.recovery,
                fault_seed: self.fault_seed,
                dead_threshold: self.dead_threshold,
                lost_pending: self.lost_pending,
                fstats: self.fstats.clone(),
                elided: self.elided,
                finish_target: self.finish_target,
                arrivals: self.arrivals.as_deref().map(|ar| ArrivalCursor {
                    cursor: ar.cursor as u64,
                    deferred: ar.deferred.iter().copied().collect(),
                    deferred_units: ar.deferred_units,
                    submitted: ar.submitted,
                    admitted: ar.admitted,
                    rejected: ar.rejected,
                    deferrals: ar.deferrals,
                    peak_deferred: ar.peak_deferred,
                    leak_tick: ar.leak_tick,
                    admit_times: ar.admit_times.clone(),
                    dispatch_times: ar.dispatch_times.clone(),
                    admit_class: ar.admit_class.clone(),
                    admitted_per_class: ar.admitted_per_class.clone(),
                }),
            },
        }
    }

    /// Rebuilds the captured run from `snap`, reusing `ws`'s
    /// allocations and streaming the continuation into `sink`. The
    /// continuation behaves exactly as the captured run would have:
    /// same `RunResult`, same trace suffix, same event counts. The
    /// elision gate is recomputed from the configuration and the sink
    /// (it is config- and sink-derived, not runtime state), so a traced
    /// restore of an untraced capture elides nothing — results are
    /// bit-identical either way, per the elision-equivalence guarantee.
    pub fn from_snapshot_traced(
        snap: &SimSnapshot,
        mut ws: SimWorkspace,
        sink: S,
    ) -> Simulation<S> {
        ws.restore(&snap.ws);
        let c = &snap.cur;
        let elide_base = snap.cfg.elision
            && !S::ENABLED
            && !snap.cfg.checked
            && snap.cfg.fault.is_none()
            && !c.fault_active
            && matches!(snap.cfg.buffers, BufferPolicy::Fixed(_))
            && snap.cfg.arrivals.is_none();
        let time_travel = snap.cfg.checked.then(|| Box::new(TimeTravel::from_env()));
        // The arrival schedule is a pure function of the plan, so the
        // restore regenerates it and overlays the captured cursor state.
        let arrivals = snap.cfg.arrivals.as_ref().map(|plan| {
            let mut rt = ArrivalRt::new(plan);
            let cur = c
                .arrivals
                .as_ref()
                .expect("arrival plan without cursor state");
            rt.cursor = cur.cursor as usize;
            rt.deferred = cur.deferred.iter().copied().collect();
            rt.deferred_units = cur.deferred_units;
            rt.submitted = cur.submitted;
            rt.admitted = cur.admitted;
            rt.rejected = cur.rejected;
            rt.deferrals = cur.deferrals;
            rt.peak_deferred = cur.peak_deferred;
            rt.leak_tick = cur.leak_tick;
            rt.admit_times = cur.admit_times.clone();
            rt.dispatch_times = cur.dispatch_times.clone();
            rt.admit_class = cur.admit_class.clone();
            rt.admitted_per_class = cur.admitted_per_class.clone();
            rt
        });
        Simulation {
            tree: snap.tree.clone(),
            cfg: snap.cfg.clone(),
            ws,
            sink,
            remaining: c.remaining,
            completed: c.completed,
            next_checkpoint: c.next_checkpoint as usize,
            next_change: c.next_change as usize,
            events_processed: c.events_processed,
            preemptions: c.preemptions,
            transfers_started: c.transfers_started,
            requests_sent: c.requests_sent,
            started: c.started,
            finished: c.finished,
            check_last_now: c.check_last_now,
            events_since_sweep: c.events_since_sweep,
            faulty_deliveries: c.faulty_deliveries,
            fault_active: c.fault_active,
            recovery: c.recovery,
            fault_seed: c.fault_seed,
            dead_threshold: c.dead_threshold,
            lost_pending: c.lost_pending,
            fstats: c.fstats.clone(),
            elide_base,
            elided: c.elided,
            finish_target: c.finish_target,
            arrivals,
            time_travel,
        }
    }

    /// Runs until the clock is about to reach `t`: processes every
    /// event scheduled strictly before `t`, leaving events at or after
    /// `t` pending. Returns `false` if the run finished first. With
    /// elision enabled the boundary granularity is macro-events (a
    /// chain ending at or past `t` is left pending).
    pub fn run_to_time(&mut self, t: Time) -> bool {
        self.start();
        while !self.finished {
            match self.ws.agenda.peek_time() {
                Some(next) if next < t => {
                    if !self.step() {
                        return false;
                    }
                }
                _ => return true,
            }
        }
        false
    }

    /// Applies a what-if fork's recorded edits (see
    /// [`SimSnapshot::fork`]): schedules newly injected faults and
    /// re-examines weight-changed neighborhoods, exactly like scripted
    /// changes applied at the fork instant. On a pre-start snapshot the
    /// plan faults and the full service pass are deferred to `start`.
    pub(crate) fn apply_fork_edits(&mut self, touched: &[usize], injected: &[FaultEvent]) {
        if !injected.is_empty() {
            let n = self.ws.hot.len();
            for f in injected {
                assert!(
                    f.node.index() < n,
                    "fault targets unknown node {} (tree has {n})",
                    f.node
                );
            }
            let now = self.ws.agenda.now();
            let plan = self.cfg.fault_plan.get_or_insert_with(FaultPlan::default);
            let base = plan.faults.len();
            plan.faults.extend_from_slice(injected);
            let (seed, recovery) = (plan.seed, plan.recovery);
            if !self.fault_active {
                self.fault_active = true;
                self.recovery = recovery;
                self.fault_seed = seed;
                self.dead_threshold = recovery.missed_ack_threshold;
            }
            // Injected faults void `chain_len`'s inertness argument.
            self.elide_base = false;
            if self.started {
                for (j, f) in injected.iter().enumerate() {
                    self.ws
                        .agenda
                        .schedule(f.at.saturating_sub(now), Event::Fault { index: base + j });
                }
            }
        }
        if !self.started || self.finished {
            return;
        }
        for &i in touched {
            if i < self.ws.hot.len() {
                self.enqueue(i);
            }
        }
        match (
            self.fault_active,
            self.cfg.protocol,
            self.arrivals.is_some(),
        ) {
            (false, Protocol::Interruptible, false) => self.drain::<false, true, false>(),
            (false, Protocol::NonInterruptible, false) => self.drain::<false, false, false>(),
            (true, Protocol::Interruptible, false) => self.drain::<true, true, false>(),
            (true, Protocol::NonInterruptible, false) => self.drain::<true, false, false>(),
            (false, Protocol::Interruptible, true) => self.drain::<false, true, true>(),
            (false, Protocol::NonInterruptible, true) => self.drain::<false, false, true>(),
            (true, Protocol::Interruptible, true) => self.drain::<true, true, true>(),
            (true, Protocol::NonInterruptible, true) => self.drain::<true, false, true>(),
        }
    }
}

impl Simulation {
    /// Rebuilds the captured run from `snap` with a fresh workspace and
    /// no tracing — the plain continuation.
    pub fn from_snapshot(snap: &SimSnapshot) -> Simulation {
        Simulation::from_snapshot_traced(snap, SimWorkspace::new(), NullSink)
    }

    /// [`Simulation::from_snapshot`] reusing `ws`'s allocations.
    pub fn from_snapshot_with(snap: &SimSnapshot, ws: SimWorkspace) -> Simulation {
        Simulation::from_snapshot_traced(snap, ws, NullSink)
    }
}
