//! Checked simulation mode: the protocol-rule invariant checker.
//!
//! The simulator's results are only as meaningful as its fidelity to the
//! protocol rules of §3 — bounded buffers, one outstanding request per
//! uncovered empty buffer, non-preemption under the non-interruptible
//! discipline, task conservation. This module re-derives those rules from
//! the runtime state and verifies them *while a run executes*, entirely
//! read-only: results are bit-identical with checking on or off.
//!
//! ## What is checked
//!
//! After every event cascade (each [`Simulation::step`]):
//!
//! * **Monotone time** — the agenda clock never moves backward (O(1)).
//!
//! Every `max(32, nodes)` events, and once at termination, a full sweep
//! ([`Simulation::verify_invariants`]) re-derives:
//!
//! * **Task conservation** — tasks dispensed by the repository are
//!   accounted for exactly: `total = remaining + buffered + computing +
//!   in-flight + completed`, skipping departed subtrees (their holdings
//!   were reclaimed into `remaining`).
//! * **Buffer legality** — each non-root node holds at most `capacity`
//!   tasks, `held + covered ≤ capacity`, and a [`BufferPolicy::Fixed`]
//!   pool has exactly the configured FB capacity, forever (the §3.2
//!   bound the paper's Table 2 buffer counts rest on).
//! * **Coverage coherence** — a child's `covered` count equals the
//!   requests pending at its parent plus tasks in flight toward it; this
//!   is the distributed-protocol claim that request messages are never
//!   lost, duplicated, or double-served.
//! * **Protocol structure** — non-IC nodes never use transfer slots or
//!   preempt; IC nodes never use the single-send path; an active
//!   transfer always transmits an occupied slot of a live child and its
//!   completion event is pending in the agenda.
//! * **Work conservation** — after a service cascade no resource idles
//!   with work available: a node holding a buffered task is computing,
//!   and an IC node with occupied slots is transmitting.
//!
//! At termination, [`Simulation::verify_terminal`] cross-checks the
//! whole run against the independent steady-state theory (when no
//! mid-run platform changes occurred): per-node busy time must equal
//! `w_i · tasks_i` exactly, and the achieved rate `N / T` must not
//! exceed the Theorem 1 optimal rate — which is sound for *any*
//! protocol, because the realized per-node rates `x_i(T)/T` form a
//! feasible point of the steady-state LP. On small trees (≤ 16 nodes)
//! the Theorem 1 fold is additionally cross-checked against the
//! `bc-steady` LP simplex oracle, closing the differential loop of the
//! `fuzz_protocols` harness.
//!
//! ## Cost
//!
//! The per-event work is two comparisons; the sweep is O(nodes) and
//! amortizes to O(1) per event. Checked mode defaults **on** under
//! `debug_assertions` (the whole test suite runs checked) and **off**
//! in release campaigns; see the committed `BENCH_campaign.json` budget.
//! The terminal oracle allocates (exact rational arithmetic), so the
//! `alloc_free` tests opt out explicitly.

use crate::config::Protocol;
use crate::sim::Simulation;
use bc_core::BufferPolicy;
use bc_platform::{NodeId, Tree};
use bc_rational::Rational;
use bc_simcore::{TraceRecord, TraceSink};
use bc_steady::{lp_optimal_rate, SteadyState};
use std::fmt;

/// Largest tree for which the terminal check also runs the LP simplex
/// oracle against the Theorem 1 fold (exact rational simplex is
/// super-linear; small trees are where fuzz shrinking lands anyway).
const LP_CROSS_CHECK_MAX_NODES: usize = 16;

/// A detected violation of a protocol invariant.
///
/// Produced by [`Simulation::verify_invariants`] /
/// [`Simulation::verify_terminal`]; checked mode panics with its
/// [`Display`](fmt::Display) rendering at the first violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable identifier of the failed check (e.g. `task-conservation`).
    pub check: &'static str,
    /// Human-readable detail, including the offending values.
    pub message: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated [{}]: {}", self.check, self.message)
    }
}

impl std::error::Error for InvariantViolation {}

fn fail(check: &'static str, message: String) -> Result<(), InvariantViolation> {
    Err(InvariantViolation { check, message })
}

impl<S: TraceSink> Simulation<S> {
    /// Checked-mode hook, run after each event's service cascade: O(1)
    /// time-monotonicity plus an amortized full sweep. Panics on the
    /// first violation (a violation means the simulator itself is wrong;
    /// there is nothing for a caller to handle), after dumping whatever
    /// the trace sink retains — with a [`bc_simcore::RingRecorder`]
    /// attached, the last events leading up to the violation.
    pub(crate) fn checked_tick(&mut self) {
        let now = self.ws.agenda.now();
        if now < self.check_last_now {
            self.dump_trace_tail();
            self.dump_time_travel();
            panic!(
                "invariant violated [monotone-time]: agenda moved backward ({} -> {})",
                self.check_last_now, now
            );
        }
        self.check_last_now = now;
        self.events_since_sweep += 1;
        let sweep_due = self.events_since_sweep >= (self.ws.hot.len() as u32).max(32);
        if sweep_due || self.finished {
            self.events_since_sweep = 0;
            if let Err(v) = self.verify_invariants() {
                self.dump_trace_tail();
                self.dump_time_travel();
                panic!(
                    "checked mode: {v} (at t={now}, event {})",
                    self.events_processed
                );
            }
            // The state just passed a full sweep — keep a periodic
            // snapshot of it for time travel (see `snapshot.rs`).
            self.time_travel_tick();
        }
        if self.finished {
            if let Err(v) = self.verify_terminal() {
                self.dump_trace_tail();
                self.dump_time_travel();
                panic!("checked mode: {v}");
            }
        }
    }

    /// Prints the sink's retained event tail to stderr — the flight
    /// recorder read-out accompanying a checked-mode panic. A no-op with
    /// the default [`bc_simcore::NullSink`] (nothing was recorded).
    fn dump_trace_tail(&self) {
        if !S::ENABLED {
            return;
        }
        let mut tail: Vec<TraceRecord> = Vec::new();
        self.sink.retained(&mut tail);
        if tail.is_empty() {
            return;
        }
        eprintln!(
            "--- trace tail: last {} event(s) before the violation ---",
            tail.len()
        );
        for r in &tail {
            eprintln!("{r}");
        }
        eprintln!("--- end trace tail ---");
    }

    /// Full invariant sweep over the current runtime state. Valid at any
    /// quiescent point (after [`Simulation::step`] returns — i.e. after
    /// the service cascade has drained). Read-only.
    pub fn verify_invariants(&self) -> Result<(), InvariantViolation> {
        self.check_quiescent()?;
        self.check_task_conservation()?;
        for i in 0..self.ws.hot.len() {
            if self.ws.hot[i].departed || self.ws.hot[i].crashed {
                continue;
            }
            self.check_buffer_legality(i)?;
            self.check_coverage(i)?;
            self.check_protocol_structure(i)?;
            self.check_row_caches(i)?;
            if !self.finished {
                self.check_work_conservation(i)?;
            }
        }
        Ok(())
    }

    /// The service queue must be fully drained between events; a node
    /// marked queued while the queue is empty would never be serviced.
    fn check_quiescent(&self) -> Result<(), InvariantViolation> {
        if !self.ws.service_queue.is_empty() {
            return fail(
                "quiescence",
                format!(
                    "service queue holds {} entries between events",
                    self.ws.service_queue.len()
                ),
            );
        }
        if let Some(i) = self.ws.queued.iter().position(|&q| q) {
            return fail(
                "quiescence",
                format!("node {i} flagged queued with an empty service queue"),
            );
        }
        Ok(())
    }

    /// Every dispensed task is somewhere: undispensed at the root, in a
    /// buffer, on a processor, in flight on a link (non-IC send or IC
    /// slot), destroyed by a fault and awaiting reissue, or completed.
    /// Departed subtrees hold nothing (reclaimed into `remaining`);
    /// crashed subtrees hold nothing (their holdings moved into the lost
    /// ledger at crash time). A transfer toward a *crashed* child is legal
    /// — the parent has no global knowledge and learns by missed acks —
    /// but one toward a *departed* child is a simulator bug (a graceful
    /// leave disentangles the boundary synchronously).
    fn check_task_conservation(&self) -> Result<(), InvariantViolation> {
        let mut buffered: u64 = 0;
        let mut computing: u64 = 0;
        let mut in_flight: u64 = 0;
        let mut computed_sum: u64 = 0;
        for (i, n) in self.ws.hot.iter().enumerate() {
            computed_sum += n.tasks_computed;
            if n.departed || n.crashed {
                continue;
            }
            if let Some(l) = &n.ledger {
                buffered += u64::from(l.held());
            }
            computing += u64::from(n.computing_since.is_some());
            if let Some(s) = &self.ws.sending[i] {
                let child = self.ws.kid(i, s.child_pos);
                if self.ws.hot[child].departed {
                    return fail(
                        "task-conservation",
                        format!("node {i} is sending to departed child {child}"),
                    );
                }
                in_flight += 1;
            }
            for k in self.ws.krange(i) {
                if self.ws.kid_slot[k].is_some() {
                    let child = self.ws.kid_node[k] as usize;
                    if self.ws.hot[child].departed {
                        return fail(
                            "task-conservation",
                            format!("node {i} holds a slot transfer for departed child {child}"),
                        );
                    }
                    in_flight += 1;
                }
            }
        }
        if computed_sum != self.completed {
            return fail(
                "task-conservation",
                format!(
                    "per-node completions sum to {computed_sum} but the global counter says {}",
                    self.completed
                ),
            );
        }
        // Open world: the closed pool is what admission let in so far;
        // batch mode injects everything up front.
        let injected = match self.arrivals.as_deref() {
            Some(ar) => ar.admitted,
            None => self.cfg.total_tasks,
        };
        let accounted =
            self.remaining + buffered + computing + in_flight + self.lost_pending + self.completed;
        if accounted != injected {
            return fail(
                "task-conservation",
                format!(
                    "{injected} tasks injected but {accounted} accounted for \
                     (remaining {} + buffered {buffered} + computing {computing} \
                     + in-flight {in_flight} + lost {} + completed {})",
                    self.remaining, self.lost_pending, self.completed
                ),
            );
        }
        self.check_arrival_accounting()
    }

    /// Open-world submission ledger: every unit the arrival process has
    /// submitted is admitted, waiting deferred, or rejected — nothing
    /// vanishes at the admission gate. The admission bound itself is
    /// checked when no fault plan or scripted change can legitimately
    /// push the queue past it (reissue and leave-reclaim re-inject tasks
    /// straight into `remaining`, bypassing admission by design).
    fn check_arrival_accounting(&self) -> Result<(), InvariantViolation> {
        let Some(ar) = self.arrivals.as_deref() else {
            return Ok(());
        };
        let due: u64 = ar.schedule[..ar.cursor].iter().map(|a| a.units).sum();
        if ar.submitted != due {
            return fail(
                "arrival-conservation",
                format!(
                    "cursor passed {due} scheduled units but {} were submitted",
                    ar.submitted
                ),
            );
        }
        if ar.submitted != ar.admitted + ar.deferred_units + ar.rejected {
            return fail(
                "arrival-conservation",
                format!(
                    "{} units submitted but only {} admitted + {} deferred + {} rejected",
                    ar.submitted, ar.admitted, ar.deferred_units, ar.rejected
                ),
            );
        }
        let backlog: u64 = ar
            .deferred
            .iter()
            .map(|&i| ar.schedule[i as usize].units)
            .sum();
        if backlog != ar.deferred_units {
            return fail(
                "arrival-conservation",
                format!(
                    "deferred queue holds {backlog} units but the counter says {}",
                    ar.deferred_units
                ),
            );
        }
        if self.cfg.fault_plan.is_none()
            && self.cfg.changes.is_empty()
            && self.remaining > ar.queue_cap
        {
            return fail(
                "admission-bound",
                format!(
                    "repository queue holds {} units past the admission cap {}",
                    self.remaining, ar.queue_cap
                ),
            );
        }
        Ok(())
    }

    /// Buffer-bound legality at node `i` (§3.1/§3.2): holdings and
    /// coverage within capacity, and a fixed pool pinned to the
    /// *configured* FB — compared against `cfg.buffers`, not the
    /// ledger's own policy, so a mis-provisioned pool cannot vouch for
    /// itself.
    fn check_buffer_legality(&self, i: usize) -> Result<(), InvariantViolation> {
        let Some(l) = &self.ws.hot[i].ledger else {
            return Ok(()); // the root buffers nothing
        };
        if l.held() > l.capacity() {
            return fail(
                "buffer-bound",
                format!(
                    "node {i} holds {} tasks in {} buffers",
                    l.held(),
                    l.capacity()
                ),
            );
        }
        if u64::from(l.held()) + u64::from(l.covered()) > u64::from(l.capacity()) {
            return fail(
                "buffer-bound",
                format!(
                    "node {i}: held {} + covered {} exceeds capacity {}",
                    l.held(),
                    l.covered(),
                    l.capacity()
                ),
            );
        }
        match self.cfg.buffers {
            BufferPolicy::Fixed(fb) => {
                if l.capacity() != fb || l.max_capacity() != fb {
                    return fail(
                        "buffer-bound",
                        format!(
                            "node {i}: fixed pool of {fb} buffers has capacity {} (max ever {})",
                            l.capacity(),
                            l.max_capacity()
                        ),
                    );
                }
            }
            BufferPolicy::Growable { initial, cap, .. } => {
                if l.capacity() < initial.min(l.max_capacity()) {
                    return fail(
                        "buffer-bound",
                        format!(
                            "node {i}: growable pool shrank to {} below initial {initial}",
                            l.capacity()
                        ),
                    );
                }
                if let Some(cap) = cap {
                    if l.max_capacity() > cap {
                        return fail(
                            "buffer-bound",
                            format!(
                                "node {i}: pool reached {} past its cap {cap}",
                                l.max_capacity()
                            ),
                        );
                    }
                }
            }
        }
        if l.peak_held() > l.max_capacity() {
            return fail(
                "buffer-bound",
                format!(
                    "node {i}: peak holdings {} exceed peak capacity {}",
                    l.peak_held(),
                    l.max_capacity()
                ),
            );
        }
        Ok(())
    }

    /// Coverage coherence at non-root node `i`: its `covered` count must
    /// equal the requests still pending at its parent plus tasks in
    /// flight toward it (one non-IC send, or one occupied IC slot).
    /// Requests are instantaneous control messages, so this holds at
    /// every quiescent point. Under a fault plan two more terms appear:
    /// requests lost in the network (covered here, unknown to the parent,
    /// pending the retry timeout) and undeliverable negative
    /// acknowledgements (the covering request was voided by an abort or
    /// denial the node cannot hear about while its uplink is down).
    /// A node whose parent crashed cannot be reconciled against the dead
    /// parent's state — it keeps its covered requests and starves, which
    /// is the accepted fate of an unreachable subtree.
    fn check_coverage(&self, i: usize) -> Result<(), InvariantViolation> {
        let Some(l) = &self.ws.hot[i].ledger else {
            return Ok(());
        };
        let p = self.ws.parent_of[i].expect("non-root has parent");
        let pos = self.ws.child_pos[i];
        if self.ws.hot[p].crashed {
            return Ok(());
        }
        let k = self.ws.kid_start[p] as usize + pos;
        let pending = self.ws.kid_pending[k];
        let inbound = match self.cfg.protocol {
            Protocol::NonInterruptible => u32::from(
                self.ws.sending[p]
                    .as_ref()
                    .is_some_and(|s| s.child_pos == pos),
            ),
            Protocol::Interruptible => u32::from(self.ws.kid_slot[k].is_some()),
        };
        let me = &self.ws.faults[i];
        let unheard = me.lost_requests + me.pending_nacks;
        if l.covered() != pending + inbound + unheard {
            return fail(
                "coverage-coherence",
                format!(
                    "node {i} has {} covered buffers but its parent {p} sees \
                     {pending} pending requests + {inbound} in flight \
                     (+ {} lost requests + {} pending nacks)",
                    l.covered(),
                    me.lost_requests,
                    me.pending_nacks
                ),
            );
        }
        Ok(())
    }

    /// Per-protocol structural rules at node `i`.
    fn check_protocol_structure(&self, i: usize) -> Result<(), InvariantViolation> {
        let now = self.ws.agenda.now();
        let n = &self.ws.hot[i];
        if let Some(since) = n.computing_since {
            if since > now {
                return fail(
                    "protocol-structure",
                    format!("node {i} started computing at {since}, after now {now}"),
                );
            }
        }
        // A departed child must be fully disentangled from its parent.
        for k in self.ws.krange(i) {
            let child = self.ws.kid_node[k] as usize;
            if self.ws.hot[child].departed && self.ws.kid_pending[k] != 0 {
                return fail(
                    "protocol-structure",
                    format!(
                        "node {i} still records {} requests from departed child {child}",
                        self.ws.kid_pending[k]
                    ),
                );
            }
        }
        match self.cfg.protocol {
            Protocol::NonInterruptible => {
                if self.ws.active[i].is_some()
                    || self.ws.kid_slot[self.ws.krange(i)]
                        .iter()
                        .any(Option::is_some)
                {
                    return fail(
                        "protocol-structure",
                        format!("non-interruptible node {i} uses transfer slots"),
                    );
                }
                if self.preemptions != 0 {
                    return fail(
                        "protocol-structure",
                        format!(
                            "non-interruptible run performed {} preemptions",
                            self.preemptions
                        ),
                    );
                }
                if let Some(s) = &self.ws.sending[i] {
                    if s.started_at > now {
                        return fail(
                            "protocol-structure",
                            format!("node {i} send started at {}, after now {now}", s.started_at),
                        );
                    }
                    if !self.ws.agenda.is_pending(s.handle) {
                        return fail(
                            "protocol-structure",
                            format!("node {i} in-flight send has no pending SendDone event"),
                        );
                    }
                }
            }
            Protocol::Interruptible => {
                if self.ws.sending[i].is_some() {
                    return fail(
                        "protocol-structure",
                        format!("interruptible node {i} uses the single-send path"),
                    );
                }
                if let Some(a) = &self.ws.active[i] {
                    let slots = &self.ws.kid_slot[self.ws.krange(i)];
                    let Some(slot) = slots.get(a.child_pos).and_then(Option::as_ref) else {
                        return fail(
                            "protocol-structure",
                            format!(
                                "node {i} transmits slot {} which holds no transfer",
                                a.child_pos
                            ),
                        );
                    };
                    if a.remaining_at_start != slot.remaining {
                        return fail(
                            "protocol-structure",
                            format!(
                                "node {i} active transfer disagrees with its slot \
                                 ({} vs {} timesteps left)",
                                a.remaining_at_start, slot.remaining
                            ),
                        );
                    }
                    if now.saturating_sub(a.started_at) > a.remaining_at_start || a.started_at > now
                    {
                        return fail(
                            "protocol-structure",
                            format!(
                                "node {i} transfer started at {} with {} timesteps of work \
                                 is still active at {now}",
                                a.started_at, a.remaining_at_start
                            ),
                        );
                    }
                    if !self.ws.agenda.is_pending(a.handle) {
                        return fail(
                            "protocol-structure",
                            format!("node {i} active transfer has no pending TransferDone event"),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// The per-node cached aggregates the hot path short-circuits on
    /// (`pending_sum`, `slots_used`) must equal what a scan of the CSR
    /// row derives — a drifted cache would silently skip delegations.
    fn check_row_caches(&self, i: usize) -> Result<(), InvariantViolation> {
        let r = self.ws.krange(i);
        let sum: u32 = self.ws.kid_pending[r.clone()].iter().sum();
        if sum != self.ws.pending_sum[i] {
            return fail(
                "row-cache",
                format!(
                    "node {i} caches {} pending child requests but its row sums to {sum}",
                    self.ws.pending_sum[i]
                ),
            );
        }
        let used = self.ws.kid_slot[r].iter().filter(|s| s.is_some()).count() as u32;
        if used != self.ws.slots_used[i] {
            return fail(
                "row-cache",
                format!(
                    "node {i} caches {} occupied slots but its row holds {used}",
                    self.ws.slots_used[i]
                ),
            );
        }
        Ok(())
    }

    /// Work conservation at node `i` after a drained cascade: no resource
    /// idles with work available. Only meaningful mid-run (wind-down
    /// stops servicing).
    fn check_work_conservation(&self, i: usize) -> Result<(), InvariantViolation> {
        let n = &self.ws.hot[i];
        let has_task = if i == 0 {
            self.remaining > 0
        } else {
            n.ledger.as_ref().is_some_and(|l| l.held() > 0)
        };
        if has_task && n.computing_since.is_none() {
            return fail(
                "work-conservation",
                format!("node {i} holds a task but its processor is idle"),
            );
        }
        if matches!(self.cfg.protocol, Protocol::Interruptible)
            && self.ws.active[i].is_none()
            && self.ws.kid_slot[self.ws.krange(i)]
                .iter()
                .any(Option::is_some)
        {
            return fail(
                "work-conservation",
                format!("node {i} has occupied transfer slots but an idle link"),
            );
        }
        Ok(())
    }

    /// Terminal cross-checks, valid once the run has finished (before the
    /// result is extracted): completion accounting, exact busy-time
    /// reconciliation, and the differential rate oracle against the
    /// Theorem 1 fold (plus the LP simplex on small trees). The
    /// theory-based checks require a static platform and are skipped when
    /// `cfg.changes` scripted mid-run mutations.
    pub fn verify_terminal(&self) -> Result<(), InvariantViolation> {
        // Open world: every submitted unit must be served or rejected —
        // `Drop` sheds, everything else completes. Batch: all of them.
        let must_complete = match self.arrivals.as_deref() {
            Some(ar) => self.cfg.total_tasks - ar.rejected,
            None => self.cfg.total_tasks,
        };
        if !self.finished || self.completed != must_complete {
            return fail(
                "terminal",
                format!(
                    "terminal check on an unfinished run ({}/{must_complete} tasks)",
                    self.completed
                ),
            );
        }
        if let Some(ar) = self.arrivals.as_deref() {
            if ar.cursor != ar.schedule.len() {
                return fail(
                    "terminal",
                    format!(
                        "run finished with {} of {} scheduled arrivals submitted",
                        ar.cursor,
                        ar.schedule.len()
                    ),
                );
            }
            if !ar.deferred.is_empty() {
                return fail(
                    "terminal",
                    format!(
                        "run finished with {} deferred units still waiting",
                        ar.deferred_units
                    ),
                );
            }
            if ar.submitted != self.cfg.total_tasks {
                return fail(
                    "terminal",
                    format!(
                        "{} units submitted of the {} the plan generates",
                        ar.submitted, self.cfg.total_tasks
                    ),
                );
            }
        }
        let times = &self.ws.completion_times;
        if times.len() as u64 != self.completed {
            return fail(
                "terminal",
                format!(
                    "{} completion timestamps recorded for {} completions",
                    times.len(),
                    self.completed
                ),
            );
        }
        if times.windows(2).any(|w| w[0] > w[1]) {
            return fail("terminal", "completion times are not monotone".into());
        }
        if !self.cfg.changes.is_empty() {
            return Ok(()); // platform mutated mid-run; theory inapplicable
        }
        if self.arrivals.is_some() {
            // Arrival-limited throughput: the steady-state rate oracles
            // assume work is always available, which an open workload
            // does not guarantee (and a fully shed run completes zero
            // tasks). Busy-time reconciliation is protocol-level and
            // still checked above via task conservation.
            return Ok(());
        }
        let end_time = *times.last().expect("total_tasks >= 1");
        for (i, n) in self.ws.hot.iter().enumerate() {
            let w = u128::from(self.tree.compute_time(NodeId(i as u32)));
            let expected = w * u128::from(n.tasks_computed);
            if u128::from(n.busy_compute) != expected {
                return fail(
                    "terminal",
                    format!(
                        "node {i} computed {} tasks of weight {w} but logged {} busy timesteps",
                        n.tasks_computed, n.busy_compute
                    ),
                );
            }
            if n.busy_compute > end_time || n.busy_link > end_time {
                return fail(
                    "terminal",
                    format!(
                        "node {i} busy times ({} compute, {} link) exceed the makespan {end_time}",
                        n.busy_compute, n.busy_link
                    ),
                );
            }
        }
        // Differential oracle: the realized rates x_i(T)/T are a feasible
        // point of the steady-state LP (w_i·x_i ≤ T per processor, the
        // serialized link bounds per edge), so N/T can never exceed the
        // optimal rate — for any protocol, scheduling order, or tie-break.
        let ss = SteadyState::analyze(&self.tree);
        let optimal = ss.optimal_rate();
        let achieved = Rational::new(self.completed as i128, end_time as i128);
        if achieved > optimal {
            return fail(
                "rate-oracle",
                format!(
                    "achieved rate {}/{end_time} exceeds the Theorem 1 optimum {optimal} \
                     — the simulator computed tasks faster than the platform allows",
                    self.completed
                ),
            );
        }
        if self.tree.len() <= LP_CROSS_CHECK_MAX_NODES {
            let lp = lp_optimal_rate(&self.tree);
            if lp != optimal {
                return fail(
                    "rate-oracle",
                    format!(
                        "Theorem 1 fold says {optimal} but the LP simplex says {lp} \
                         for the same {} -node tree",
                        self.tree.len()
                    ),
                );
            }
        }
        // Post-fault recovery oracle: once the last crash has happened the
        // platform is the surviving tree, whose Theorem 1 rate bounds the
        // tail throughput. Tasks already in the pipeline at the crash
        // (buffered, computing, or inbound at each surviving node) may
        // complete on top of that, so the bound carries a pipeline-depth
        // slack — far below the campaign's task counts, so a simulator
        // that kept "computing" on crashed capacity still trips it.
        if let Some(last_crash) = self.fstats.last_crash_time {
            let surv = self.surviving_tree();
            let rate_post = SteadyState::analyze(&surv).optimal_rate();
            let span = end_time.saturating_sub(last_crash);
            let after = times.iter().filter(|&&t| t > last_crash).count() as u64;
            let mut slack: u64 = 2;
            for (i, n) in self.ws.hot.iter().enumerate() {
                if i == 0 || n.departed || n.crashed {
                    continue;
                }
                slack += u64::from(n.ledger.as_ref().map_or(0, |l| l.max_capacity())) + 2;
            }
            let bound = rate_post.clone() * Rational::new(span as i128, 1)
                + Rational::from_integer(slack as i128);
            if Rational::from_integer(after as i128) > bound {
                return fail(
                    "rate-oracle",
                    format!(
                        "{after} completions in the {span}-timestep window after the last \
                         crash (t={last_crash}) exceed the surviving tree's optimal rate \
                         {rate_post} plus pipeline slack {slack}"
                    ),
                );
            }
        }
        Ok(())
    }

    /// The platform left standing after all faults: the original tree
    /// minus crashed (and departed) subtrees, rebuilt in preorder with
    /// child order preserved. Only meaningful on a statically configured
    /// run (no scripted changes), which is the only place it is called.
    fn surviving_tree(&self) -> Tree {
        let mut surv = Tree::new(self.tree.compute_time(NodeId::ROOT));
        let mut map = vec![NodeId::ROOT; self.ws.hot.len()];
        let mut stack = vec![0usize];
        while let Some(d) = stack.pop() {
            for &c in &self.ws.kid_node[self.ws.krange(d)] {
                let c = c as usize;
                if self.ws.hot[c].crashed || self.ws.hot[c].departed {
                    continue;
                }
                let id = NodeId(c as u32);
                map[c] =
                    surv.add_child(map[d], self.tree.comm_time(id), self.tree.compute_time(id));
                stack.push(c);
            }
        }
        surv
    }
}
