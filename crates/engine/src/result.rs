//! Outputs of a simulation run.

use bc_simcore::Time;

/// Fault-and-recovery accounting of one run. All zero (and
/// `last_crash_time` `None`) when no fault plan was configured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Scheduled faults that actually fired before the run finished.
    pub faults_injected: u64,
    /// Tasks destroyed by crashes and aborted transfers.
    pub tasks_lost: u64,
    /// Lost tasks the repository re-injected into the remaining pool.
    pub tasks_reissued: u64,
    /// Request messages lost in the network.
    pub requests_dropped: u64,
    /// Request-timeout retries fired.
    pub retries: u64,
    /// Nodes that exhausted their retries and presumed their parent dead.
    pub gave_up: u64,
    /// Crash faults applied (subtree roots, not subtree node counts).
    pub crashes: u64,
    /// In-flight transfers torn down (by aborts, outages, or delivery to
    /// a crashed child).
    pub transfer_aborts: u64,
    /// Children declared dead after the missed-ack threshold.
    pub children_declared_dead: u64,
    /// Declared-dead children that turned out to be alive and rejoined.
    pub children_revived: u64,
    /// Duplicated deliveries recognized and dropped.
    pub duplicates_dropped: u64,
    /// Time of the last crash fault applied, if any — the start of the
    /// post-fault window the terminal oracle measures recovery over.
    pub last_crash_time: Option<Time>,
}

/// Open-world arrival/admission accounting of one run, plus the raw
/// per-unit timestamps the latency metrics derive sojourn/service/wait
/// distributions from. All empty/zero when no [`crate::ArrivalPlan`]
/// was configured, so batch results are unaffected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArrivalStats {
    /// Unit tasks submitted by the arrival process (admitted or not).
    pub submitted: u64,
    /// Unit tasks admitted into the repository queue.
    pub admitted: u64,
    /// Unit tasks rejected by the `Drop` admission policy.
    pub rejected: u64,
    /// Arrivals that had to wait in the deferred queue (backpressure
    /// engagements, `Defer` policy).
    pub deferrals: u64,
    /// Peak deferred-queue depth, in unit tasks.
    pub peak_deferred: u64,
    /// `admit_times[k]` = timestep the `(k+1)`-th admitted unit entered
    /// the repository queue (admission order).
    pub admit_times: Vec<Time>,
    /// `dispatch_times[k]` = timestep the `(k+1)`-th unit left the
    /// repository queue (taken by the root's processor or sent to a
    /// child), in dispatch order. Under faults, reissued units dispatch
    /// again, so this can be longer than `admit_times`.
    pub dispatch_times: Vec<Time>,
    /// Per-class completed unit counts (class order of the plan). Exact
    /// only in fault-free runs — completions are matched to classes in
    /// admission order (units are interchangeable; see DESIGN.md
    /// "Open-world service mode").
    pub completed_per_class: Vec<u64>,
    /// Per-class admitted unit counts (class order of the plan).
    pub admitted_per_class: Vec<u64>,
}

/// Everything the experiment harness needs from one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// `completion_times[k]` = timestep at which the `(k+1)`-th task
    /// completed (completions are globally ordered by the event loop).
    pub completion_times: Vec<Time>,
    /// Time of the last completion.
    pub end_time: Time,
    /// Tasks computed by each node (arena order).
    pub tasks_per_node: Vec<u64>,
    /// Per-node high-water buffer-pool size (the paper's "buffers used").
    /// Entry 0 (the root, which has no buffer pool) is 0.
    pub max_buffers_per_node: Vec<u32>,
    /// Per-node pool size at the end of the run (differs from the max
    /// only when buffer decay is enabled).
    pub final_buffers_per_node: Vec<u32>,
    /// Per-node peak simultaneously-held task count.
    pub peak_held_per_node: Vec<u32>,
    /// Per-node accumulated processor busy time (timesteps).
    pub busy_compute_per_node: Vec<u64>,
    /// Per-node accumulated outbound-link transmitting time (timesteps).
    pub busy_link_per_node: Vec<u64>,
    /// Per-node outbound-link preemption count (all zero under non-IC).
    pub preemptions_per_node: Vec<u64>,
    /// `(tasks_completed, global max buffers so far)` at each configured
    /// checkpoint (Table 2).
    pub checkpoint_max_buffers: Vec<(u64, u32)>,
    /// Discrete events processed (simulation effort, for the benches).
    pub events_processed: u64,
    /// Transfers preempted (interruptible protocol; 0 under non-IC).
    pub preemptions: u64,
    /// Task transfers started toward children.
    pub transfers_started: u64,
    /// Request control messages sent upward.
    pub requests_sent: u64,
    /// Fault/recovery accounting (all zero without a fault plan).
    pub faults: FaultStats,
    /// Open-world arrival accounting (all empty without an arrival plan).
    pub arrivals: ArrivalStats,
}

impl RunResult {
    /// Tasks completed over the whole run.
    pub fn tasks_completed(&self) -> u64 {
        self.completion_times.len() as u64
    }

    /// Which nodes computed at least one task — Fig 6's "used nodes".
    pub fn used_nodes(&self) -> Vec<bool> {
        self.tasks_per_node.iter().map(|&t| t > 0).collect()
    }

    /// Largest buffer pool any node ever reached.
    pub fn max_buffers(&self) -> u32 {
        self.max_buffers_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Per-node processor utilization over the whole run, in [0, 1].
    pub fn compute_utilization(&self, node: usize) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.busy_compute_per_node[node] as f64 / self.end_time as f64
    }

    /// Per-node outbound-link utilization over the whole run, in [0, 1].
    pub fn link_utilization(&self, node: usize) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.busy_link_per_node[node] as f64 / self.end_time as f64
    }

    /// Per-node measured compute rate over the whole run (tasks per
    /// timestep) — comparable to the theory's optimal allocation.
    pub fn node_rate(&self, node: usize) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.tasks_per_node[node] as f64 / self.end_time as f64
    }

    /// Mean throughput over the entire run (tasks per timestep), as a
    /// float for reporting.
    pub fn overall_rate(&self) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.tasks_completed() as f64 / self.end_time as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        RunResult {
            completion_times: vec![2, 4, 6, 8],
            end_time: 8,
            tasks_per_node: vec![2, 2, 0],
            max_buffers_per_node: vec![0, 3, 1],
            final_buffers_per_node: vec![0, 3, 1],
            peak_held_per_node: vec![0, 2, 1],
            busy_compute_per_node: vec![4, 4, 0],
            busy_link_per_node: vec![6, 0, 0],
            preemptions_per_node: vec![1, 0, 0],
            checkpoint_max_buffers: vec![(2, 2), (4, 3)],
            events_processed: 42,
            preemptions: 1,
            transfers_started: 2,
            requests_sent: 3,
            faults: FaultStats::default(),
            arrivals: ArrivalStats::default(),
        }
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.tasks_completed(), 4);
        assert_eq!(r.used_nodes(), vec![true, true, false]);
        assert_eq!(r.max_buffers(), 3);
        assert!((r.overall_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_accessors() {
        let r = sample();
        assert!((r.compute_utilization(0) - 0.5).abs() < 1e-12);
        assert!((r.link_utilization(0) - 0.75).abs() < 1e-12);
        assert_eq!(r.compute_utilization(2), 0.0);
        assert!((r.node_rate(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_time_rate() {
        let mut r = sample();
        r.end_time = 0;
        assert_eq!(r.overall_rate(), 0.0);
    }
}
