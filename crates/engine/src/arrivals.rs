//! Open-world workload model: streaming task arrival at the repository.
//!
//! The paper studies a *closed* batch of `N` identical tasks sitting at
//! the repository when the simulation starts. Production workloads are
//! *open*: requests arrive continuously, in several classes, and the
//! repository must admit or shed them under a bounded queue. An
//! [`ArrivalPlan`] describes such a workload as a set of task classes,
//! each with its own arrival process (Poisson-like, bursty, or replayed
//! from an explicit trace) and its own size in unit tasks.
//!
//! Determinism is the design center: the whole plan is **pregenerated**
//! into a sorted [`Arrival`] schedule by [`ArrivalPlan::schedule`] using
//! only the plan's seed and integer arithmetic (no floats, no platform
//! `libm`), so the same plan yields the same byte-identical arrival
//! sequence on every thread count, entry point, and architecture. The
//! engine walks the schedule with a cursor and a single chained agenda
//! event — the agenda never holds more than one pending arrival.
//!
//! Discrete time makes "Poisson" precise as its discrete analog: a
//! Bernoulli process whose geometric inter-arrival gaps have the
//! requested mean. Gaps are sampled by exact inversion in Q32
//! fixed-point (see [`geometric_gap`]), which is why no float ever
//! enters the schedule.

use bc_simcore::split_seed;

/// How the repository reacts to an arrival that would overflow the
/// bounded admission queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Shed load: the arrival is rejected and counted, never served.
    Drop,
    /// Backpressure: the arrival waits in a deferred queue and is
    /// admitted as soon as the backlog drains below the cap.
    Defer,
}

/// One class of tasks in the open workload. Classes model applications
/// with distinct costs: a class arrival submits `work_units` unit tasks
/// at once (the kernel's identical-task invariant is preserved by
/// expressing a heavy request as a batch of unit tasks — a compound
/// arrival process).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskClass {
    /// Display name (streamed in metrics, not used by the engine).
    pub name: String,
    /// Unit tasks submitted per arrival of this class (≥ 1).
    pub work_units: u64,
    /// When arrivals of this class occur.
    pub process: ArrivalProcess,
}

/// The arrival process of one [`TaskClass`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Discrete-time Poisson: `count` arrivals separated by geometric
    /// gaps with mean `mean_gap` (≥ 1), sampled from the plan seed.
    Poisson {
        /// Mean inter-arrival gap in timesteps (≥ 1).
        mean_gap: u64,
        /// Number of arrivals this class generates (≥ 1).
        count: u64,
    },
    /// Periodic bursts: at `phase + k * period` for `k < bursts`, `size`
    /// arrivals strike at the same instant.
    Burst {
        /// Time of the first burst.
        phase: u64,
        /// Gap between bursts (≥ 1).
        period: u64,
        /// Arrivals per burst (≥ 1).
        size: u64,
        /// Number of bursts (≥ 1).
        bursts: u64,
    },
    /// Replay of an explicit trace of arrival instants (need not be
    /// sorted; the merged schedule is).
    Trace {
        /// Arrival instants (one arrival each).
        times: Vec<u64>,
    },
}

/// A fully specified open workload: classes, seed, and the repository's
/// admission bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalPlan {
    /// Seed for the Poisson gap sampling (each class stretches it with
    /// [`split_seed`], so classes are independent streams).
    pub seed: u64,
    /// The task classes (≥ 1).
    pub classes: Vec<TaskClass>,
    /// Admission-queue bound, in unit tasks (≥ 1): the repository never
    /// holds more than this many admitted-but-undispatched units.
    pub queue_cap: u64,
    /// What happens to arrivals past the bound.
    pub policy: AdmissionPolicy,
}

/// One pregenerated arrival: `units` unit tasks of class `class` submit
/// at time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant.
    pub at: u64,
    /// Index into [`ArrivalPlan::classes`].
    pub class: u32,
    /// Unit tasks submitted (the class's `work_units`).
    pub units: u64,
}

/// A geometric gap with mean `mean_gap`, by exact inversion in Q32
/// fixed-point: the smallest `k ≥ 1` with `(1 − 1/mean_gap)^k ≤ u` for
/// `u` uniform in `(0, 1]`. Integer-only, so bit-identical everywhere.
fn geometric_gap(mean_gap: u64, rng: &mut u64, index: &mut u64) -> u64 {
    if mean_gap <= 1 {
        return 1;
    }
    // (1 − p) in Q32, with p = 1/mean_gap.
    let q: u64 = (((1u128 << 32) * (mean_gap as u128 - 1)) / mean_gap as u128) as u64;
    // u uniform in (0, 2^32]; split_seed stretches the class stream.
    let draw = split_seed(*rng, *index);
    *index += 1;
    let u = (draw >> 32).max(1);
    let mut acc = q;
    let mut k = 1u64;
    // Expected mean_gap iterations; schedule generation only, never hot.
    while acc > u {
        acc = ((acc as u128 * q as u128) >> 32) as u64;
        k += 1;
    }
    k
}

impl ArrivalPlan {
    /// Total unit tasks the plan submits (admitted or not).
    pub fn total_units(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.work_units * c.arrival_count())
            .sum()
    }

    /// Pregenerates the full, sorted arrival schedule. Deterministic in
    /// the plan alone; ties sort by `(time, class index, sequence)` so
    /// the merge order is total.
    pub fn schedule(&self) -> Vec<Arrival> {
        let mut all: Vec<(u64, u32, u64)> = Vec::new();
        for (ci, class) in self.classes.iter().enumerate() {
            let mut seq = 0u64;
            let mut push = |at: u64, seq: &mut u64| {
                all.push((at, ci as u32, *seq));
                *seq += 1;
            };
            match &class.process {
                ArrivalProcess::Poisson { mean_gap, count } => {
                    let mut stream = split_seed(self.seed, ci as u64 + 1);
                    let mut index = 0u64;
                    let mut t = 0u64;
                    for _ in 0..*count {
                        t = t.saturating_add(geometric_gap(*mean_gap, &mut stream, &mut index));
                        push(t, &mut seq);
                    }
                }
                ArrivalProcess::Burst {
                    phase,
                    period,
                    size,
                    bursts,
                } => {
                    for b in 0..*bursts {
                        let at = phase.saturating_add(b.saturating_mul(*period));
                        for _ in 0..*size {
                            push(at, &mut seq);
                        }
                    }
                }
                ArrivalProcess::Trace { times } => {
                    for &at in times {
                        push(at, &mut seq);
                    }
                }
            }
        }
        // Trace times may be unsorted; the merge must still be total.
        all.sort_unstable();
        all.into_iter()
            .map(|(at, class, _)| Arrival {
                at,
                class,
                units: self.classes[class as usize].work_units,
            })
            .collect()
    }

    /// Validates internal consistency (called from `SimConfig::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("arrival plan needs >= 1 task class".into());
        }
        if self.queue_cap == 0 {
            return Err("admission queue cap must be >= 1".into());
        }
        for class in &self.classes {
            if class.work_units == 0 {
                return Err(format!("class '{}' needs work_units >= 1", class.name));
            }
            if class.work_units > self.queue_cap {
                // A deferred arrival wider than the cap could never be
                // admitted: the backpressure queue would wedge forever.
                return Err(format!(
                    "class '{}' work_units {} exceeds queue cap {}",
                    class.name, class.work_units, self.queue_cap
                ));
            }
            match &class.process {
                ArrivalProcess::Poisson { mean_gap, count } => {
                    if *mean_gap == 0 {
                        return Err(format!("class '{}' needs mean_gap >= 1", class.name));
                    }
                    if *count == 0 {
                        return Err(format!("class '{}' needs count >= 1", class.name));
                    }
                }
                ArrivalProcess::Burst {
                    period,
                    size,
                    bursts,
                    ..
                } => {
                    if *period == 0 || *size == 0 || *bursts == 0 {
                        return Err(format!(
                            "class '{}' burst needs period, size, bursts >= 1",
                            class.name
                        ));
                    }
                }
                ArrivalProcess::Trace { times } => {
                    if times.is_empty() {
                        return Err(format!("class '{}' trace is empty", class.name));
                    }
                }
            }
        }
        if self.total_units() == 0 {
            return Err("arrival plan submits zero unit tasks".into());
        }
        Ok(())
    }
}

impl TaskClass {
    /// Number of arrivals this class generates.
    pub fn arrival_count(&self) -> u64 {
        match &self.process {
            ArrivalProcess::Poisson { count, .. } => *count,
            ArrivalProcess::Burst { size, bursts, .. } => size * bursts,
            ArrivalProcess::Trace { times } => times.len() as u64,
        }
    }
}

/// Convenience constructors used throughout the tests and the server.
impl ArrivalPlan {
    /// A single-class Poisson plan with unit tasks, `Defer` admission.
    pub fn poisson(seed: u64, mean_gap: u64, count: u64, queue_cap: u64) -> Self {
        ArrivalPlan {
            seed,
            classes: vec![TaskClass {
                name: "poisson".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson { mean_gap, count },
            }],
            queue_cap,
            policy: AdmissionPolicy::Defer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ArrivalPlan {
        ArrivalPlan {
            seed: 42,
            classes: vec![
                TaskClass {
                    name: "small".into(),
                    work_units: 1,
                    process: ArrivalProcess::Poisson {
                        mean_gap: 5,
                        count: 20,
                    },
                },
                TaskClass {
                    name: "heavy".into(),
                    work_units: 3,
                    process: ArrivalProcess::Burst {
                        phase: 10,
                        period: 25,
                        size: 2,
                        bursts: 4,
                    },
                },
                TaskClass {
                    name: "replay".into(),
                    work_units: 2,
                    process: ArrivalProcess::Trace {
                        times: vec![7, 3, 3, 50],
                    },
                },
            ],
            queue_cap: 8,
            policy: AdmissionPolicy::Defer,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let p = plan();
        let a = p.schedule();
        let b = p.schedule();
        assert_eq!(a, b, "same plan must regenerate bit-identically");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        assert_eq!(a.len() as u64, 20 + 8 + 4);
    }

    #[test]
    fn total_units_counts_classes() {
        // 20·1 poisson + 8·3 burst + 4·2 trace.
        assert_eq!(plan().total_units(), 20 + 24 + 8);
        let units: u64 = plan().schedule().iter().map(|a| a.units).sum();
        assert_eq!(units, plan().total_units());
    }

    #[test]
    fn seed_changes_poisson_stream_only() {
        let mut p2 = plan();
        p2.seed = 43;
        let a = plan().schedule();
        let b = p2.schedule();
        assert_ne!(a, b, "different seeds must differ");
        let bursts_a: Vec<_> = a.iter().filter(|x| x.class == 1).collect();
        let bursts_b: Vec<_> = b.iter().filter(|x| x.class == 1).collect();
        assert_eq!(bursts_a, bursts_b, "burst classes are seed-independent");
    }

    #[test]
    fn geometric_gap_mean_is_close() {
        // Empirical mean of the Q32 inversion tracks the requested mean
        // (coarse bound; this is a sanity check, not a statistics test).
        let mut stream = 7u64;
        let mut index = 0u64;
        let n = 4000u64;
        let sum: u64 = (0..n)
            .map(|_| geometric_gap(10, &mut stream, &mut index))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((8.0..12.0).contains(&mean), "mean {mean} drifted from 10");
    }

    #[test]
    fn validation_rejects_degenerate_plans() {
        let mut p = plan();
        p.queue_cap = 0;
        assert!(p.validate().is_err());
        let mut p = plan();
        p.classes.clear();
        assert!(p.validate().is_err());
        let mut p = plan();
        p.classes[0].work_units = 0;
        assert!(p.validate().is_err());
        let mut p = plan();
        p.classes[0].process = ArrivalProcess::Poisson {
            mean_gap: 0,
            count: 5,
        };
        assert!(p.validate().is_err());
        let mut p = plan();
        p.classes[2].process = ArrivalProcess::Trace { times: vec![] };
        assert!(p.validate().is_err());
        let mut p = plan();
        p.classes[1].work_units = p.queue_cap + 1;
        assert!(p.validate().is_err(), "class wider than the cap wedges");
        plan().validate().unwrap();
    }
}
