//! # bc-engine — the autonomous-protocol simulator
//!
//! Runs the bandwidth-centric autonomous protocols (and their baselines)
//! over a platform tree on the `bc-simcore` discrete-event kernel: the
//! role SimGrid played in the paper's evaluation (§4.1).
//!
//! ```
//! use bc_engine::{SimConfig, Simulation};
//! use bc_platform::examples::fig1_tree;
//!
//! // Interruptible communication, 3 fixed buffers, 200 tasks.
//! let result = Simulation::new(fig1_tree(), SimConfig::interruptible(3, 200)).run();
//! assert_eq!(result.tasks_completed(), 200);
//! ```

pub mod accum;
pub mod arrivals;
pub mod config;
pub mod durability;
pub mod invariants;
pub mod profile;
pub mod result;
pub mod sim;
pub mod snapshot;

pub use accum::RunStatsAccumulator;
pub use arrivals::{AdmissionPolicy, Arrival, ArrivalPlan, ArrivalProcess, TaskClass};
pub use config::{
    ChangeKind, FaultEvent, FaultInjection, FaultKind, FaultPlan, PlannedChange, Protocol,
    RecoveryTuning, SelectorKind, SimConfig,
};
pub use durability::{
    CheckpointError, CheckpointKind, CheckpointStore, LoadedCheckpoint, SkippedGeneration,
};
pub use invariants::InvariantViolation;
pub use result::{ArrivalStats, FaultStats, RunResult};
pub use sim::{SimWorkspace, Simulation};
pub use snapshot::{SimSnapshot, SnapshotError, WhatIf, WorkspaceSnapshot};

// Trace plumbing, re-exported so engine users name one crate: the sink
// trait the simulator is generic over plus the stock sinks/writers.
pub use bc_simcore::{
    trace, BinWriter, JsonlWriter, NullSink, RingRecorder, TeeSink, TraceEvent, TraceRecord,
    TraceSink, VecSink,
};
