//! Simulation configuration: protocol variant, buffer policy, scheduling
//! policy, observation mode, workload size, and planned platform changes.

use crate::arrivals::ArrivalPlan;
use bc_core::{BufferPolicy, GrowthGate, ObserverKind};
use bc_platform::NodeId;

/// Communication discipline (§3.1 vs §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// §3.1: a started transfer always runs to completion.
    NonInterruptible,
    /// §3.2: a request from a higher-priority child preempts the transfer
    /// to a lower-priority child; the partial transfer is shelved in a
    /// per-child slot and later resumed where it left off.
    Interruptible,
}

/// Which child-selection policy nodes use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectorKind {
    /// The paper's policy: prioritize by communication time.
    BandwidthCentric,
    /// Baseline: prioritize by the child's computation time.
    ComputeCentric,
    /// Baseline: round-robin over requesting children.
    RoundRobin,
}

/// A scripted platform mutation (the §4.2.3 adaptability experiment and
/// the dynamic-overlay extension): applied as soon as `after_tasks`
/// tasks have completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedChange {
    /// Completion count that triggers the change.
    pub after_tasks: u64,
    /// The node the change targets. For [`ChangeKind::Join`] this is the
    /// *parent* the new node attaches under; for [`ChangeKind::Leave`]
    /// the root of the departing subtree; otherwise the node whose
    /// weight changes.
    pub node: NodeId,
    /// What changes.
    pub kind: ChangeKind,
}

/// The mutable quantity of a [`PlannedChange`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// Set `c_node` (communication contention).
    CommTime(u64),
    /// Set `w_node` (processor contention).
    ComputeTime(u64),
    /// A new node joins the overlay under `node` — the §3 scalability
    /// property ("it is very straightforward to add subtrees of nodes
    /// below any currently connected node"). The joined node's id is the
    /// next arena index, deterministically, so later changes can target
    /// it.
    Join {
        /// Edge weight of the new uplink.
        comm: u64,
        /// The new node's compute time.
        compute: u64,
    },
    /// The subtree rooted at `node` departs. Tasks it held (buffered,
    /// computing, or in flight toward it) return to the repository for
    /// re-dispatch — the master-reissue semantics of volunteer-computing
    /// systems.
    Leave,
}

/// A deliberately wrong protocol behavior, injected to validate that the
/// checked simulation mode (see [`crate::invariants`]) actually catches
/// protocol-rule violations. Never enabled by experiments; the
/// `fuzz_protocols` harness uses it to self-test its detector and
/// shrinker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultInjection {
    /// Every non-root node builds its buffer pool one larger than the
    /// policy allows — the classic FB bound off-by-one. Violates buffer
    /// legality as soon as the extra buffer is provisioned.
    FbOffByOne,
    /// Every `every`-th delivered task silently vanishes from the
    /// receiving buffer (a lost-task bug). Violates task conservation at
    /// the next checker sweep.
    LeakTask {
        /// Leak period, in deliveries (≥ 1).
        every: u64,
    },
    /// The repository forgets a reissue: tasks lost to a fault are removed
    /// from the reissue ledger without re-entering the remaining pool.
    /// Only meaningful together with a [`FaultPlan`]; violates task
    /// conservation at the next checker sweep, which is how the ledger
    /// extension proves it watches the recovery path.
    SwallowReissue,
    /// The repository drops every `every`-th *deferred* arrival on
    /// admission instead of queueing it (without counting it rejected) —
    /// a lost-submission bug in the open-world admission path. Only
    /// meaningful together with an [`ArrivalPlan`]; violates the
    /// open-world conservation term `submitted == done + in_flight +
    /// queued + rejected` at the next checker sweep, proving the
    /// arrival leg of the checker actually fires.
    LeakQueuedTask {
        /// Leak period, in deferred arrivals (≥ 1).
        every: u64,
    },
}

/// One scheduled environment fault (absolute simulation time). Unlike
/// [`FaultInjection`] — deliberate *protocol* bugs the checker must catch
/// — these model the *network and node failures the protocol is expected
/// to recover from*; the checker stays silent on a correct recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time the fault strikes.
    pub at: u64,
    /// The node whose uplink (or self, for `Crash`) is hit. Never the
    /// repository.
    pub node: NodeId,
    /// What breaks.
    pub kind: FaultKind,
}

/// The fault taxonomy of the unreliable-network model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The next `batches` request batches sent by `node` vanish in the
    /// network: the parent never learns of them, the child's request
    /// timeout eventually fires and re-issues them with backoff.
    RequestLoss {
        /// Request batches to drop (≥ 1).
        batches: u32,
    },
    /// The in-flight task transfer on `node`'s uplink (if any) is torn
    /// down: the task is lost, the sender observes the reset, the
    /// repository reissues the task after its detection latency.
    TransferAbort,
    /// `node`'s uplink goes dark for `duration` timesteps: requests sent
    /// during the window are lost, in-flight and arriving transfers abort,
    /// and negative acknowledgements are deferred to the window's end.
    LinkOutage {
        /// Outage length, in timesteps (≥ 1).
        duration: u64,
    },
    /// The subtree rooted at `node` dies abruptly — no goodbye, all
    /// buffered/computing/in-flight tasks inside it destroyed. Its parent
    /// discovers the death through missed acknowledgements; the destroyed
    /// tasks are reissued at the repository.
    Crash,
    /// The next `copies` deliveries into `node` each arrive twice (an
    /// at-least-once network); the duplicate copy must be recognized by
    /// task identity and dropped.
    DuplicateDelivery {
        /// Deliveries to duplicate (≥ 1).
        copies: u32,
    },
}

/// Timeout/retry/reissue tuning of the recovery protocol. All quantities
/// are sim-time timesteps or counts; defaults are the calibrated choices
/// documented in DESIGN.md ("Fault model & recovery").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryTuning {
    /// Base request timeout: a node with unacknowledged (lost) requests
    /// re-issues them this many timesteps after sending (plus backoff and
    /// jitter).
    pub request_timeout: u64,
    /// Exponential backoff cap: retry `r` waits `request_timeout << min(r,
    /// backoff_cap)` plus jitter.
    pub backoff_cap: u32,
    /// Consecutive fruitless retries after which a node presumes its
    /// parent dead and stops requesting (a later successful delivery
    /// revives it).
    pub max_retries: u32,
    /// Consecutive transfer failures toward a child after which the parent
    /// presumes it dead, discards its pending requests, and stops
    /// delegating to it (a later request from the child revives it).
    pub missed_ack_threshold: u8,
    /// Repository-side detection latency: lost tasks re-enter the
    /// remaining pool this many timesteps after being lost.
    pub reissue_delay: u64,
}

impl Default for RecoveryTuning {
    fn default() -> Self {
        RecoveryTuning {
            request_timeout: 32,
            backoff_cap: 6,
            max_retries: 5,
            missed_ack_threshold: 2,
            reissue_delay: 48,
        }
    }
}

/// A seeded, schedulable plan of environment faults for one run. The plan
/// is part of the configuration, so a faulted run is exactly as
/// deterministic and reproducible as a fault-free one: the seed feeds
/// only the retry jitter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the deterministic retry jitter.
    pub seed: u64,
    /// The scheduled faults (any order; the engine schedules each at its
    /// absolute time).
    pub faults: Vec<FaultEvent>,
    /// Recovery-protocol tuning.
    pub recovery: RecoveryTuning,
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Communication discipline.
    pub protocol: Protocol,
    /// Buffer sizing at every non-root node.
    pub buffers: BufferPolicy,
    /// Child-selection policy.
    pub selector: SelectorKind,
    /// How nodes estimate per-child communication times.
    pub observer: ObserverKind,
    /// Feed the local processor before children when both want the same
    /// buffered task (the default; delegating to self costs no link time).
    pub self_first: bool,
    /// Number of application tasks.
    pub total_tasks: u64,
    /// Completion counts at which the global buffer high-water mark is
    /// snapshotted (Table 2).
    pub checkpoints: Vec<u64>,
    /// Scripted platform mutations, sorted by `after_tasks`.
    pub changes: Vec<PlannedChange>,
    /// Safety valve: abort (panic) if the event count exceeds this.
    pub max_events: u64,
    /// Checked simulation mode: re-derive and verify the protocol
    /// invariants (task conservation, buffer-bound legality, coverage
    /// coherence, monotone time, terminal rate ≤ the Theorem 1 optimum)
    /// while the run executes, panicking on the first violation. The
    /// checker is read-only — results are bit-identical either way.
    ///
    /// Defaults **on** under `debug_assertions` (so the whole test suite
    /// runs checked) or the `checked` cargo feature, **off** in release
    /// campaigns. See DESIGN.md "Invariants & checked mode" for what each
    /// invariant encodes and what checking costs.
    ///
    /// On a violation, the panic is preceded by whatever the simulation's
    /// trace sink retains — run with a `bc_simcore::RingRecorder` (as
    /// `fuzz_protocols --repro` does) to get the last events leading up
    /// to the failure.
    pub checked: bool,
    /// Saturated-regime event elision: when the engine can prove that a
    /// run of back-to-back computations at one node cannot interact with
    /// anything else (no other event falls inside the span and every
    /// intermediate service is provably inert), it collapses them into a
    /// single macro-event and replays the per-completion bookkeeping at
    /// the original timestamps. Results — `RunResult`, `FaultStats`,
    /// traces, event counts — are bit-identical either way; only agenda
    /// traffic is saved. Forced off by tracing sinks, checked mode, fault
    /// injection/plans, pending platform changes, and non-fixed buffer
    /// policies, where inertness cannot be (cheaply) proven.
    pub elision: bool,
    /// Deliberate protocol fault, for validating the checker itself.
    /// `None` (always, outside checker tests) = faithful protocol.
    pub fault: Option<FaultInjection>,
    /// Scheduled environment faults (unreliable network / crash model)
    /// the protocol must recover from. `None` = perfectly reliable
    /// network, and the recovery plumbing stays entirely off the hot
    /// path.
    pub fault_plan: Option<FaultPlan>,
    /// Open-world streaming workload (see [`crate::arrivals`]). `None` =
    /// the paper's closed batch of `total_tasks` tasks, and the arrival
    /// plumbing stays entirely off the hot path (its own `const`
    /// monomorphization leg, like the fault split). When set,
    /// `total_tasks` must equal the plan's total unit count —
    /// [`SimConfig::with_arrivals`] maintains this.
    pub arrivals: Option<ArrivalPlan>,
}

impl SimConfig {
    /// The paper's interruptible protocol with `fb` fixed buffers per node.
    pub fn interruptible(fb: u32, total_tasks: u64) -> Self {
        SimConfig {
            protocol: Protocol::Interruptible,
            buffers: BufferPolicy::Fixed(fb),
            ..Self::base(total_tasks)
        }
    }

    /// The paper's non-interruptible protocol with `ib` initial buffers
    /// and unbounded growth. The default growth gate is the calibrated
    /// choice (see DESIGN.md); use [`SimConfig::non_interruptible_gated`]
    /// to ablate.
    pub fn non_interruptible(ib: u32, total_tasks: u64) -> Self {
        Self::non_interruptible_gated(ib, GrowthGate::default(), total_tasks)
    }

    /// Non-interruptible with an explicit growth gate.
    pub fn non_interruptible_gated(ib: u32, gate: GrowthGate, total_tasks: u64) -> Self {
        SimConfig {
            protocol: Protocol::NonInterruptible,
            buffers: BufferPolicy::Growable {
                initial: ib,
                cap: None,
                gate,
                decay_after: None,
            },
            ..Self::base(total_tasks)
        }
    }

    /// Non-interruptible with a *fixed* pool (Fig 7 uses non-IC, FB=2).
    pub fn non_interruptible_fixed(fb: u32, total_tasks: u64) -> Self {
        SimConfig {
            protocol: Protocol::NonInterruptible,
            buffers: BufferPolicy::Fixed(fb),
            ..Self::base(total_tasks)
        }
    }

    fn base(total_tasks: u64) -> Self {
        SimConfig {
            protocol: Protocol::Interruptible,
            buffers: BufferPolicy::Fixed(3),
            selector: SelectorKind::BandwidthCentric,
            observer: ObserverKind::Oracle,
            self_first: true,
            total_tasks,
            checkpoints: Vec::new(),
            changes: Vec::new(),
            max_events: 500_000_000,
            checked: cfg!(any(debug_assertions, feature = "checked")),
            elision: true,
            fault: None,
            fault_plan: None,
            arrivals: None,
        }
    }

    /// Enables or disables checked simulation mode (see
    /// [`SimConfig::checked`]).
    pub fn with_checked(mut self, checked: bool) -> Self {
        self.checked = checked;
        self
    }

    /// Enables or disables saturated-regime event elision (see
    /// [`SimConfig::elision`]). Elision never changes results; turning
    /// it off exists for differential testing and benchmarking.
    pub fn with_elision(mut self, elision: bool) -> Self {
        self.elision = elision;
        self
    }

    /// Injects a deliberate protocol fault (checker validation only).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Schedules environment faults for the run (see [`FaultPlan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Switches the run to the open-world streaming workload described
    /// by `plan` (see [`crate::arrivals`]). `total_tasks` is set to the
    /// plan's total unit count so the closed-world accounting (results,
    /// oracles) stays meaningful; with a `Drop` admission policy the run
    /// finishes when every *admitted* unit completes.
    pub fn with_arrivals(mut self, plan: ArrivalPlan) -> Self {
        self.total_tasks = plan.total_units();
        self.arrivals = Some(plan);
        self
    }

    /// Adds a scripted change (keeps `changes` sorted by trigger count).
    pub fn with_change(mut self, change: PlannedChange) -> Self {
        self.changes.push(change);
        self.changes.sort_by_key(|c| c.after_tasks);
        self
    }

    /// Sets the Table-2 style snapshot checkpoints.
    pub fn with_checkpoints(mut self, checkpoints: Vec<u64>) -> Self {
        self.checkpoints = checkpoints;
        self.checkpoints.sort_unstable();
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_tasks == 0 {
            return Err("total_tasks must be >= 1".into());
        }
        if let Some(FaultInjection::LeakTask { every: 0 }) = self.fault {
            return Err("LeakTask fault needs every >= 1".into());
        }
        if let Some(FaultInjection::LeakQueuedTask { every: 0 }) = self.fault {
            return Err("LeakQueuedTask fault needs every >= 1".into());
        }
        if self.buffers.initial() == 0 {
            return Err("buffer pools must start with >= 1 buffer".into());
        }
        for c in &self.changes {
            match c.kind {
                ChangeKind::CommTime(0) => return Err("change to comm_time 0".into()),
                ChangeKind::ComputeTime(0) => return Err("change to compute_time 0".into()),
                ChangeKind::Join { comm: 0, .. } => return Err("join with comm_time 0".into()),
                ChangeKind::Join { compute: 0, .. } => {
                    return Err("join with compute_time 0".into())
                }
                ChangeKind::Leave if c.node == NodeId::ROOT => {
                    return Err("the repository cannot leave".into())
                }
                _ => {}
            }
        }
        if let Some(plan) = &self.fault_plan {
            if plan.recovery.request_timeout == 0 {
                return Err("request_timeout must be >= 1".into());
            }
            if plan.recovery.missed_ack_threshold == 0 {
                return Err("missed_ack_threshold must be >= 1".into());
            }
            for f in &plan.faults {
                if f.node == NodeId::ROOT {
                    return Err("faults cannot target the repository".into());
                }
                match f.kind {
                    FaultKind::RequestLoss { batches: 0 } => {
                        return Err("RequestLoss needs batches >= 1".into())
                    }
                    FaultKind::LinkOutage { duration: 0 } => {
                        return Err("LinkOutage needs duration >= 1".into())
                    }
                    FaultKind::DuplicateDelivery { copies: 0 } => {
                        return Err("DuplicateDelivery needs copies >= 1".into())
                    }
                    _ => {}
                }
            }
        }
        if let Some(plan) = &self.arrivals {
            plan.validate()?;
            if self.total_tasks != plan.total_units() {
                return Err(format!(
                    "total_tasks ({}) must equal the arrival plan's unit count ({})",
                    self.total_tasks,
                    plan.total_units()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let ic = SimConfig::interruptible(3, 1000);
        assert_eq!(ic.protocol, Protocol::Interruptible);
        assert_eq!(ic.buffers, BufferPolicy::Fixed(3));
        ic.validate().unwrap();

        let nic = SimConfig::non_interruptible(1, 1000);
        assert_eq!(nic.protocol, Protocol::NonInterruptible);
        assert!(nic.buffers.growable());
        nic.validate().unwrap();

        let fixed = SimConfig::non_interruptible_fixed(2, 1000);
        assert_eq!(fixed.protocol, Protocol::NonInterruptible);
        assert_eq!(fixed.buffers, BufferPolicy::Fixed(2));
    }

    #[test]
    fn changes_sorted() {
        let cfg = SimConfig::interruptible(3, 100)
            .with_change(PlannedChange {
                after_tasks: 50,
                node: NodeId(1),
                kind: ChangeKind::CommTime(3),
            })
            .with_change(PlannedChange {
                after_tasks: 20,
                node: NodeId(1),
                kind: ChangeKind::ComputeTime(1),
            });
        assert_eq!(cfg.changes[0].after_tasks, 20);
        assert_eq!(cfg.changes[1].after_tasks, 50);
    }

    #[test]
    fn topology_change_validation() {
        let ok = SimConfig::interruptible(2, 10).with_change(PlannedChange {
            after_tasks: 5,
            node: NodeId::ROOT,
            kind: ChangeKind::Join {
                comm: 2,
                compute: 7,
            },
        });
        ok.validate().unwrap();
        let bad = SimConfig::interruptible(2, 10).with_change(PlannedChange {
            after_tasks: 5,
            node: NodeId::ROOT,
            kind: ChangeKind::Join {
                comm: 0,
                compute: 7,
            },
        });
        assert!(bad.validate().is_err());
        let bad = SimConfig::interruptible(2, 10).with_change(PlannedChange {
            after_tasks: 5,
            node: NodeId::ROOT,
            kind: ChangeKind::Leave,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn checked_mode_and_fault_knobs() {
        // Checked defaults on under debug_assertions (every debug test run)
        // and off as shipped — this test runs in both profiles.
        let cfg = SimConfig::interruptible(3, 10);
        assert_eq!(
            cfg.checked,
            cfg!(any(debug_assertions, feature = "checked"))
        );
        assert_eq!(cfg.fault, None);
        let cfg = cfg.with_checked(false);
        assert!(!cfg.checked);
        let cfg = cfg.with_fault(FaultInjection::FbOffByOne);
        assert_eq!(cfg.fault, Some(FaultInjection::FbOffByOne));
        cfg.validate().unwrap();
        assert!(SimConfig::interruptible(3, 10)
            .with_fault(FaultInjection::LeakTask { every: 0 })
            .validate()
            .is_err());
    }

    #[test]
    fn fault_plan_validation() {
        let plan = |kind, node| FaultPlan {
            seed: 7,
            faults: vec![FaultEvent { at: 10, node, kind }],
            recovery: RecoveryTuning::default(),
        };
        SimConfig::interruptible(3, 10)
            .with_fault_plan(plan(FaultKind::Crash, NodeId(1)))
            .validate()
            .unwrap();
        assert!(SimConfig::interruptible(3, 10)
            .with_fault_plan(plan(FaultKind::Crash, NodeId::ROOT))
            .validate()
            .is_err());
        assert!(SimConfig::interruptible(3, 10)
            .with_fault_plan(plan(FaultKind::RequestLoss { batches: 0 }, NodeId(1)))
            .validate()
            .is_err());
        assert!(SimConfig::interruptible(3, 10)
            .with_fault_plan(plan(FaultKind::LinkOutage { duration: 0 }, NodeId(1)))
            .validate()
            .is_err());
        assert!(SimConfig::interruptible(3, 10)
            .with_fault_plan(plan(FaultKind::DuplicateDelivery { copies: 0 }, NodeId(1)))
            .validate()
            .is_err());
        let mut degenerate = FaultPlan::default();
        degenerate.recovery.request_timeout = 0;
        assert!(SimConfig::interruptible(3, 10)
            .with_fault_plan(degenerate)
            .validate()
            .is_err());
    }

    #[test]
    fn arrival_plan_wiring() {
        use crate::arrivals::ArrivalPlan;
        let plan = ArrivalPlan::poisson(5, 4, 30, 6);
        let cfg = SimConfig::interruptible(3, 1).with_arrivals(plan.clone());
        assert_eq!(cfg.total_tasks, plan.total_units());
        cfg.validate().unwrap();
        // Desynchronized total_tasks is rejected.
        let mut bad = SimConfig::interruptible(3, 1).with_arrivals(plan);
        bad.total_tasks = 7;
        assert!(bad.validate().is_err());
        // The new self-test fault validates like the others.
        assert!(SimConfig::interruptible(3, 10)
            .with_fault(FaultInjection::LeakQueuedTask { every: 0 })
            .validate()
            .is_err());
        SimConfig::interruptible(3, 10)
            .with_fault(FaultInjection::LeakQueuedTask { every: 2 })
            .validate()
            .unwrap();
    }

    #[test]
    fn invalid_configs() {
        assert!(SimConfig::interruptible(3, 0).validate().is_err());
        assert!(SimConfig::interruptible(0, 10).validate().is_err());
        let bad = SimConfig::interruptible(1, 10).with_change(PlannedChange {
            after_tasks: 1,
            node: NodeId(1),
            kind: ChangeKind::CommTime(0),
        });
        assert!(bad.validate().is_err());
    }
}
