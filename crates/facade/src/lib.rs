//! # bandwidth-centric — autonomous scheduling of independent-task applications
//!
//! A faithful, from-scratch reproduction of *Kreaseck, Carter, Casanova,
//! Ferrante — "Autonomous Protocols for Bandwidth-Centric Scheduling of
//! Independent-task Applications" (IPDPS 2003)*: the steady-state theory
//! (Theorem 1 with an LP oracle), the two autonomous protocols
//! (non-interruptible with buffer growth; interruptible with small fixed
//! buffers), a deterministic discrete-event simulator standing in for
//! SimGrid, and a harness regenerating every table and figure of the
//! paper's evaluation.
//!
//! This crate is the facade: it re-exports each subsystem under a stable
//! name and offers a [`prelude`] for applications.
//!
//! ```
//! use bandwidth_centric::prelude::*;
//!
//! // Build a platform, ask the theory for its optimal rate, and check
//! // the autonomous protocol attains it.
//! let mut tree = Tree::new(2);
//! tree.add_child(NodeId::ROOT, 1, 2);
//! let optimal = SteadyState::analyze(&tree).optimal_rate();
//! assert_eq!(optimal, Rational::from_integer(1));
//!
//! let run = Simulation::new(tree, SimConfig::interruptible(3, 500)).run();
//! assert_eq!(run.tasks_completed(), 500);
//! ```

pub use bc_core as core;
pub use bc_engine as engine;
pub use bc_experiments as experiments;
pub use bc_lp as lp;
pub use bc_metrics as metrics;
pub use bc_platform as platform;
pub use bc_rational as rational;
pub use bc_simcore as simcore;
pub use bc_steady as steady;

/// The names most applications need.
pub mod prelude {
    pub use bc_core::{
        BufferPolicy, ChildInfo, ChildSelector, GrowthGate, LatencyObserver, ObserverKind,
    };
    pub use bc_engine::{
        ChangeKind, PlannedChange, Protocol, RunResult, SelectorKind, SimConfig, SimWorkspace,
        Simulation,
    };
    pub use bc_metrics::{detect_onset, normalized_curve, window_rates, OnsetConfig};
    pub use bc_platform::{NodeId, PlatformGraph, RandomTreeConfig, Tree};
    pub use bc_rational::Rational;
    pub use bc_steady::{lp_optimal_rate, period_bound, SteadyState};
}
