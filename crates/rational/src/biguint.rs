//! Arbitrary-precision unsigned integers.
//!
//! Steady-state tree weights are nested continued-fraction-like expressions
//! whose reduced denominators can exceed 128 bits on deep trees (the random
//! campaign produces depths past 80), so the rational layer is built on an
//! arbitrary-precision magnitude type rather than `i128`.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limb
//! (the canonical form of zero is an empty limb vector). The operations
//! implemented are exactly those the scheduling stack needs: comparison,
//! add/sub/mul, Knuth division, binary GCD, and shifts.

use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = Vec::new();
        if hi != 0 {
            limbs.push(lo);
            limbs.push(hi);
        } else if lo != 0 {
            limbs.push(lo);
        }
        BigUint { limbs }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Number of trailing zero bits; 0 for the value 0 by convention.
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `self - other`; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `self * other` (schoolbook; operand sizes in this workload are small).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Knuth Algorithm D with a single-limb fast path. Panics on division
    /// by zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_mag(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut out = vec![0u64; self.limbs.len()];
            let mut rem = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                out[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            let mut q = BigUint { limbs: out };
            q.trim();
            return (q, BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m + n + 1 limbs during the loop
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let top = (un[j + n] as u128) << 64 | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >> 64 != 0 || qhat * vn[n - 2] as u128 > (rhat << 64 | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract q̂ * v from the remainder window.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q̂ was one too large: add back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }

        let mut quot = BigUint { limbs: q };
        quot.trim();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.trim();
        (quot, rem.shr(shift))
    }

    /// Greatest common divisor (binary GCD: shifts and subtractions only,
    /// which keeps reduction fast on multi-thousand-bit operands).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros();
        let zb = b.trailing_zeros();
        let common = za.min(zb);
        a = a.shr(za);
        b = b.shr(zb);
        loop {
            match a.cmp_mag(&b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = a.sub(&b);
            a = a.shr(a.trailing_zeros());
        }
        a.shl(common)
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        self.divrem(&g).0.mul(other)
    }

    /// Approximates as `f64` (round-toward-zero on the top 53 bits;
    /// saturates to `f64::INFINITY` past the exponent range).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.limbs[0] as f64;
        }
        if bits > 1024 {
            return f64::INFINITY;
        }
        let mantissa = self.shr(bits - 53).to_u64().unwrap() as f64;
        mantissa * 2f64.powi((bits - 53) as i32)
    }

    /// Decimal string (used by `Display`).
    fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let chunk = BigUint::from_u64(10_000_000_000_000_000_000); // 10^19
        while !cur.is_zero() {
            let (q, r) = cur.divrem(&chunk);
            digits.push(r.to_u64().unwrap_or(0));
            cur = q;
        }
        let mut s = format!("{}", digits.pop().unwrap());
        for d in digits.into_iter().rev() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn add_small() {
        assert_eq!(b(2).add(&b(3)), b(5));
        assert_eq!(b(0).add(&b(7)), b(7));
        assert_eq!(b(u64::MAX as u128).add(&b(1)), b(1u128 << 64));
    }

    #[test]
    fn sub_small() {
        assert_eq!(b(5).sub(&b(3)), b(2));
        assert_eq!(b(1u128 << 64).sub(&b(1)), b(u64::MAX as u128));
        assert_eq!(b(9).sub(&b(9)), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = b(3).sub(&b(5));
    }

    #[test]
    fn mul_small() {
        assert_eq!(b(6).mul(&b(7)), b(42));
        assert_eq!(b(0).mul(&b(7)), BigUint::zero());
        assert_eq!(
            b(u64::MAX as u128).mul(&b(u64::MAX as u128)),
            b((u64::MAX as u128) * (u64::MAX as u128))
        );
    }

    #[test]
    fn mul_carries_across_limbs() {
        // (2^64 - 1)^2 has a 128-bit result; go one step bigger too.
        let big = b(u128::MAX);
        let sq = big.mul(&big);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect = BigUint::one()
            .shl(256)
            .sub(&BigUint::one().shl(129))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn divrem_single_limb() {
        let (q, r) = b(100).divrem(&b(7));
        assert_eq!((q, r), (b(14), b(2)));
        let (q, r) = b(5).divrem(&b(7));
        assert_eq!((q, r), (BigUint::zero(), b(5)));
        let (q, r) = b(u128::MAX).divrem(&b(10));
        assert_eq!(q, b(u128::MAX / 10));
        assert_eq!(r, b(u128::MAX % 10));
    }

    #[test]
    fn divrem_multi_limb() {
        let n = BigUint::one().shl(200).add(&b(12345));
        let d = BigUint::one().shl(100).add(&b(67));
        let (q, r) = n.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), n);
        assert!(r.cmp_mag(&d) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).divrem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl(64), b(1u128 << 64));
        assert_eq!(b(1u128 << 64).shr(64), b(1));
        assert_eq!(b(0b1010).shl(3), b(0b1010000));
        assert_eq!(b(0b1010000).shr(3), b(0b1010));
        assert_eq!(BigUint::zero().shl(100), BigUint::zero());
        assert_eq!(b(5).shr(200), BigUint::zero());
    }

    #[test]
    fn gcd_matches_euclid() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(5)), b(1));
        assert_eq!(b(0).gcd(&b(9)), b(9));
        assert_eq!(b(9).gcd(&b(0)), b(9));
        let a = b(2 * 3 * 5 * 7 * 11 * 13);
        let c = b(3 * 7 * 13 * 19);
        assert_eq!(a.gcd(&c), b(3 * 7 * 13));
    }

    #[test]
    fn lcm_small() {
        assert_eq!(b(4).lcm(&b(6)), b(12));
        assert_eq!(b(0).lcm(&b(6)), BigUint::zero());
    }

    #[test]
    fn ordering() {
        assert!(b(3) < b(5));
        assert!(b(1u128 << 100) > b(u64::MAX as u128));
        assert_eq!(b(42).cmp(&b(42)), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(
            b(1234567890123456789012345678901234567u128).to_string(),
            "1234567890123456789012345678901234567"
        );
        let big = BigUint::one().shl(128);
        assert_eq!(big.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(b(0).to_f64(), 0.0);
        assert_eq!(b(1234).to_f64(), 1234.0);
        let big = BigUint::one().shl(100);
        assert_eq!(big.to_f64(), 2f64.powi(100));
        let huge = BigUint::one().shl(2000);
        assert_eq!(huge.to_f64(), f64::INFINITY);
    }

    #[test]
    fn round_trip_u128() {
        for v in [0u128, 1, u64::MAX as u128, u128::MAX, 12345678901234567890] {
            assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
        }
        assert_eq!(BigUint::one().shl(128).to_u128(), None);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(b(8).trailing_zeros(), 3);
        assert_eq!(b(1).trailing_zeros(), 0);
        assert_eq!(BigUint::one().shl(130).trailing_zeros(), 130);
    }
}
