//! Signed arbitrary-precision integers layered over [`BigUint`].

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// Arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Builds from sign and magnitude (normalizes zero).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// Builds from an `i128`.
    pub fn from_i128(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                mag: BigUint::from_u128(v as u128),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: BigUint::from_u128(v.unsigned_abs()),
            },
        }
    }

    /// Converts to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => (m <= i128::MAX as u128).then_some(m as i128),
            Sign::Negative => (m <= i128::MAX as u128 + 1).then(|| (m as i128).wrapping_neg()),
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// True if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Negative => self.neg(),
            _ => self.clone(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: self.mag.add(&other.mag),
            },
            _ => match self.mag.cmp_mag(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    sign: self.sign,
                    mag: self.mag.sub(&other.mag),
                },
                Ordering::Less => BigInt {
                    sign: other.sign,
                    mag: other.mag.sub(&self.mag),
                },
            },
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt {
            sign,
            mag: self.mag.mul(&other.mag),
        }
    }

    /// Truncated division with remainder (`self = q*other + r`,
    /// `|r| < |other|`, `r` has the sign of `self`).
    pub fn divrem(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (qm, rm) = self.mag.divrem(&other.mag);
        let qsign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        (
            BigInt::from_sign_mag(if qm.is_zero() { Sign::Zero } else { qsign }, qm),
            BigInt::from_sign_mag(if rm.is_zero() { Sign::Zero } else { self.sign }, rm),
        )
    }

    /// Exact division; panics (in debug) if not exact.
    pub fn div_exact(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.divrem(other);
        debug_assert!(r.is_zero(), "div_exact with nonzero remainder");
        q
    }

    /// Comparison.
    pub fn cmp_val(&self, other: &BigInt) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.mag.cmp_mag(&self.mag),
            (Sign::Positive, Sign::Positive) => self.mag.cmp_mag(&other.mag),
            (a, b) => (a as i8 - 1).cmp(&(b as i8 - 1)),
        }
    }

    /// Approximates as `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        BigInt::from_i128(v)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i128(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_i128(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i128) -> BigInt {
        BigInt::from_i128(v)
    }

    #[test]
    fn sign_classification() {
        assert!(i(0).is_zero());
        assert!(i(5).is_positive());
        assert!(i(-5).is_negative());
        assert_eq!(i(0).sign(), Sign::Zero);
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(i(5).add(&i(-3)), i(2));
        assert_eq!(i(-5).add(&i(3)), i(-2));
        assert_eq!(i(-5).add(&i(-3)), i(-8));
        assert_eq!(i(5).add(&i(-5)), i(0));
        assert_eq!(i(0).add(&i(7)), i(7));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(i(5).sub(&i(9)), i(-4));
        assert_eq!(i(-4).neg(), i(4));
        assert_eq!(i(0).neg(), i(0));
        assert_eq!(i(-7).abs(), i(7));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(i(3).mul(&i(-4)), i(-12));
        assert_eq!(i(-3).mul(&i(-4)), i(12));
        assert_eq!(i(0).mul(&i(-4)), i(0));
    }

    #[test]
    fn divrem_truncates_toward_zero() {
        let (q, r) = i(7).divrem(&i(2));
        assert_eq!((q, r), (i(3), i(1)));
        let (q, r) = i(-7).divrem(&i(2));
        assert_eq!((q, r), (i(-3), i(-1)));
        let (q, r) = i(7).divrem(&i(-2));
        assert_eq!((q, r), (i(-3), i(1)));
        let (q, r) = i(-7).divrem(&i(-2));
        assert_eq!((q, r), (i(3), i(-1)));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-10) < i(-2));
        assert!(i(-2) < i(0));
        assert!(i(0) < i(3));
        assert!(i(3) < i(10));
        assert_eq!(i(4).cmp(&i(4)), Ordering::Equal);
    }

    #[test]
    fn i128_round_trip() {
        for v in [0i128, 1, -1, i128::MAX, i128::MIN, 42, -42] {
            assert_eq!(BigInt::from_i128(v).to_i128(), Some(v));
        }
    }

    #[test]
    fn display() {
        assert_eq!(i(-12345).to_string(), "-12345");
        assert_eq!(i(0).to_string(), "0");
    }

    #[test]
    fn to_f64_signs() {
        assert_eq!(i(-1000).to_f64(), -1000.0);
        assert_eq!(i(1000).to_f64(), 1000.0);
    }
}
