//! Exact rational numbers.
//!
//! Steady-state rates, tree weights, and ε-allocations are all rationals;
//! keeping them exact means the "did this tree reach the optimal rate?"
//! verdict in the experiment harness is a true comparison, never a float
//! tolerance.
//!
//! # Two-tier representation
//!
//! Almost every rational this codebase touches has a numerator and
//! denominator that fit in one machine word: tree weights start as small
//! integers, and the Theorem 1 fold / simplex pivots only grow them
//! slowly. The representation therefore has two tiers:
//!
//! * **Small** — `i64` numerator over `u64` denominator, all arithmetic
//!   in widened `i128`/`u128` intermediates with a word-level binary GCD.
//!   No heap allocation at all.
//! * **Big** — the original [`BigInt`]/[`BigUint`] pair, used only when a
//!   reduced result genuinely does not fit the small tier.
//!
//! Construction and every operation **canonicalize**: a value is stored
//! small if and only if its reduced numerator fits `i64` and denominator
//! fits `u64`. Promotion happens exactly at overflow, and any big result
//! that shrinks back demotes again. Because the mapping value → variant
//! is injective, the derived `Eq`/`Hash` remain consistent, and results
//! are bit-for-bit identical whichever path computed them.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Internal storage. `Small` holds a reduced `num/den` with `den ≥ 1`;
/// `Big` is used only for values whose reduced form does not fit, so the
/// derived equality never has to compare across variants.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small { num: i64, den: u64 },
    Big { num: BigInt, den: BigUint },
}

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and `gcd(|num|, den) = 1`
/// (zero is stored as `0/1`); the small representation is used whenever
/// the reduced value fits it (see the module docs).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    repr: Repr,
}

/// Word-level binary GCD. `gcd(x, 0) = x`.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Does a reduced magnitude pair fit the small tier?
fn fits_small(negative: bool, nmag: u128, dmag: u128) -> bool {
    let num_limit = if negative {
        1u128 << 63 // |i64::MIN|
    } else {
        i64::MAX as u128
    };
    nmag <= num_limit && dmag <= u64::MAX as u128
}

/// Signed `i64` from a magnitude known to fit (`nmag ≤ 2^63` when
/// negative, `≤ 2^63 − 1` otherwise).
fn small_num(negative: bool, nmag: u128) -> i64 {
    if negative {
        (nmag as u64).wrapping_neg() as i64
    } else {
        nmag as i64
    }
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational {
            repr: Repr::Small { num: 0, den: 1 },
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational {
            repr: Repr::Small { num: 1, den: 1 },
        }
    }

    /// Builds a canonical value from an already-reduced sign/magnitude
    /// pair: small if it fits, big otherwise.
    fn from_reduced(negative: bool, nmag: u128, dmag: u128) -> Self {
        if nmag == 0 {
            return Rational::zero();
        }
        if fits_small(negative, nmag, dmag) {
            Rational {
                repr: Repr::Small {
                    num: small_num(negative, nmag),
                    den: dmag as u64,
                },
            }
        } else {
            let sign = if negative {
                Sign::Negative
            } else {
                Sign::Positive
            };
            Rational {
                repr: Repr::Big {
                    num: BigInt::from_sign_mag(sign, BigUint::from_u128(nmag)),
                    den: BigUint::from_u128(dmag),
                },
            }
        }
    }

    /// Reduces a word-sized sign/magnitude pair and canonicalizes.
    fn reduce128(negative: bool, nmag: u128, dmag: u128) -> Self {
        debug_assert!(dmag != 0);
        if nmag == 0 {
            return Rational::zero();
        }
        let g = gcd_u128(nmag, dmag);
        Rational::from_reduced(negative, nmag / g, dmag / g)
    }

    /// Builds `num/den` from machine integers. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        Rational::reduce128(
            (num < 0) != (den < 0),
            num.unsigned_abs(),
            den.unsigned_abs(),
        )
    }

    /// Builds from big parts, normalizing (and demoting to the small
    /// tier when the reduced value fits). Panics if `den == 0`.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (num, den) = if g.is_one() {
            (num, den)
        } else {
            let mag = num.magnitude().divrem(&g).0;
            (BigInt::from_sign_mag(num.sign(), mag), den.divrem(&g).0)
        };
        // Demote when the reduced value fits one word per component.
        if let (Some(n), Some(d)) = (num.magnitude().to_u128(), den.to_u128()) {
            if fits_small(num.is_negative(), n, d) {
                return Rational {
                    repr: Repr::Small {
                        num: small_num(num.is_negative(), n),
                        den: d as u64,
                    },
                };
            }
        }
        Rational {
            repr: Repr::Big { num, den },
        }
    }

    /// Builds the integer `v`.
    pub fn from_integer(v: i128) -> Self {
        Rational::reduce128(v < 0, v.unsigned_abs(), 1)
    }

    /// Numerator (sign-carrying). Materialized on the small path, so the
    /// return is owned.
    pub fn numer(&self) -> BigInt {
        match &self.repr {
            Repr::Small { num, .. } => BigInt::from_i128(*num as i128),
            Repr::Big { num, .. } => num.clone(),
        }
    }

    /// Denominator (always positive). Materialized on the small path, so
    /// the return is owned.
    pub fn denom(&self) -> BigUint {
        match &self.repr {
            Repr::Small { den, .. } => BigUint::from_u64(*den),
            Repr::Big { den, .. } => den.clone(),
        }
    }

    /// True if this value is held in the inline word-sized
    /// representation (introspection for tests and benchmarks; the
    /// numeric behavior of the two tiers is identical).
    pub fn is_small(&self) -> bool {
        matches!(self.repr, Repr::Small { .. })
    }

    /// Both components as big integers (promotion for mixed-tier ops).
    fn big_parts(&self) -> (BigInt, BigUint) {
        match &self.repr {
            Repr::Small { num, den } => (BigInt::from_i128(*num as i128), BigUint::from_u64(*den)),
            Repr::Big { num, den } => (num.clone(), den.clone()),
        }
    }

    /// True if the value is 0.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num == 0,
            Repr::Big { num, .. } => num.is_zero(),
        }
    }

    /// True if strictly positive.
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num > 0,
            Repr::Big { num, .. } => num.is_positive(),
        }
    }

    /// True if strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num < 0,
            Repr::Big { num, .. } => num.is_negative(),
        }
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small { den, .. } => *den == 1,
            Repr::Big { den, .. } => den.is_one(),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        match &self.repr {
            Repr::Small { num, den } => {
                // Already reduced; swapping keeps it reduced but the new
                // numerator (old denominator) may exceed the i64 range.
                Rational::from_reduced(*num < 0, *den as u128, num.unsigned_abs() as u128)
            }
            Repr::Big { num, den } => Rational::from_parts(
                BigInt::from_sign_mag(num.sign(), den.clone()),
                num.magnitude().clone(),
            ),
        }
    }

    /// Exact sum.
    pub fn add_ref(&self, other: &Rational) -> Rational {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            // a/b + c/d = (a·d + c·b) / (b·d). Each cross product is at
            // most 2^63·(2^64−1) < 2^127, so it fits i128; only the final
            // sum can overflow, checked below.
            let n1 = (*a as i128) * (*d as i128);
            let n2 = (*c as i128) * (*b as i128);
            if let Some(n) = n1.checked_add(n2) {
                return Rational::reduce128(n < 0, n.unsigned_abs(), (*b as u128) * (*d as u128));
            }
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = other.big_parts();
        let num = an.mul(&big(&bd)).add(&bn.mul(&big(&ad)));
        Rational::from_parts(num, ad.mul(&bd))
    }

    /// Exact difference.
    pub fn sub_ref(&self, other: &Rational) -> Rational {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            let n1 = (*a as i128) * (*d as i128);
            let n2 = (*c as i128) * (*b as i128);
            if let Some(n) = n1.checked_sub(n2) {
                return Rational::reduce128(n < 0, n.unsigned_abs(), (*b as u128) * (*d as u128));
            }
        }
        self.add_ref(&other.neg_ref())
    }

    /// Exact product.
    pub fn mul_ref(&self, other: &Rational) -> Rational {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            // |a·c| ≤ 2^126 and b·d < 2^128: neither product can
            // overflow its widened type.
            let n = (*a as i128) * (*c as i128);
            return Rational::reduce128(n < 0, n.unsigned_abs(), (*b as u128) * (*d as u128));
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = other.big_parts();
        Rational::from_parts(an.mul(&bn), ad.mul(&bd))
    }

    /// Exact quotient. Panics if `other` is zero.
    pub fn div_ref(&self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "reciprocal of zero");
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            // a/b ÷ c/d = (a·d) / (b·|c|) with the sign of a·c.
            // a·d ≤ 2^63·(2^64−1) < 2^127 and b·|c| ≤ (2^64−1)·2^63 <
            // 2^127: both fit their widened types.
            let nmag = (a.unsigned_abs() as u128) * (*d as u128);
            let dmag = (*b as u128) * (c.unsigned_abs() as u128);
            return Rational::reduce128((*a < 0) != (*c < 0), nmag, dmag);
        }
        self.mul_ref(&other.recip())
    }

    /// Negation.
    pub fn neg_ref(&self) -> Rational {
        match &self.repr {
            Repr::Small { num, den } => {
                // i64::MIN negates out of range; reroute through the
                // canonicalizing constructor.
                Rational::from_reduced(*num > 0, num.unsigned_abs() as u128, *den as u128)
            }
            // from_parts re-canonicalizes: flipping the sign can move a
            // magnitude-2^63 numerator across the small-tier boundary.
            Repr::Big { num, den } => Rational::from_parts(num.neg(), den.clone()),
        }
    }

    /// In-place sum: `self += other`. On the small path this allocates
    /// nothing; hot loops should prefer it over `add_ref`.
    pub fn add_assign_ref(&mut self, other: &Rational) {
        *self = self.add_ref(other);
    }

    /// In-place difference: `self -= other`.
    pub fn sub_assign_ref(&mut self, other: &Rational) {
        *self = self.sub_ref(other);
    }

    /// In-place product: `self *= other`.
    pub fn mul_assign_ref(&mut self, other: &Rational) {
        *self = self.mul_ref(other);
    }

    /// In-place quotient: `self /= other`. Panics if `other` is zero.
    pub fn div_assign_ref(&mut self, other: &Rational) {
        *self = self.div_ref(other);
    }

    /// Fused update `self -= a · b` — the simplex pivot's row operation.
    pub fn sub_mul_assign_ref(&mut self, a: &Rational, b: &Rational) {
        let prod = a.mul_ref(b);
        self.sub_assign_ref(&prod);
    }

    /// Floor (largest integer ≤ self).
    pub fn floor(&self) -> BigInt {
        match &self.repr {
            Repr::Small { num, den } => BigInt::from_i128((*num as i128).div_euclid(*den as i128)),
            Repr::Big { num, den } => {
                let (q, r) = num.divrem(&BigInt::from_sign_mag(Sign::Positive, den.clone()));
                if num.is_negative() && !r.is_zero() {
                    q.sub(&BigInt::one())
                } else {
                    q
                }
            }
        }
    }

    /// Ceiling (smallest integer ≥ self).
    pub fn ceil(&self) -> BigInt {
        self.neg_ref().floor().neg()
    }

    /// Approximates as the **nearest** `f64` (round-half-even), exact in
    /// the IEEE sense even when components exceed 2^53.
    pub fn to_f64(&self) -> f64 {
        let (negative, value) = match &self.repr {
            Repr::Small { num, den } => {
                if *num == 0 {
                    return 0.0;
                }
                let nmag = num.unsigned_abs();
                if nmag <= (1 << 53) && *den <= (1 << 53) {
                    // Both operands convert exactly; IEEE division then
                    // rounds the quotient correctly in one step.
                    return *num as f64 / *den as f64;
                }
                (
                    *num < 0,
                    ratio_to_f64(&BigUint::from_u64(nmag), &BigUint::from_u64(*den)),
                )
            }
            Repr::Big { num, den } => (num.is_negative(), ratio_to_f64(num.magnitude(), den)),
        };
        if negative {
            -value
        } else {
            value
        }
    }

    /// `min` by value.
    pub fn min_ref(&self, other: &Rational) -> Rational {
        if self <= other {
            self.clone()
        } else {
            other.clone()
        }
    }

    /// `max` by value.
    pub fn max_ref(&self, other: &Rational) -> Rational {
        if self >= other {
            self.clone()
        } else {
            other.clone()
        }
    }
}

/// Correctly-rounded `n/d` for positive big integers (round-half-even).
///
/// Scales the numerator so the integer quotient carries 55–56 bits, keeps
/// the division remainder as a sticky bit, and rounds the excess bits off
/// the quotient — one rounding step total, like hardware division.
fn ratio_to_f64(n: &BigUint, d: &BigUint) -> f64 {
    debug_assert!(!n.is_zero() && !d.is_zero());
    let nb = n.bit_len() as i64;
    let db = d.bit_len() as i64;
    // After scaling by 2^shift the quotient lies in [2^54, 2^56).
    let shift = 55 - (nb - db);
    let (sn, sd) = if shift >= 0 {
        (n.shl(shift as usize), d.clone())
    } else {
        (n.clone(), d.shl((-shift) as usize))
    };
    let (q, r) = sn.divrem(&sd);
    let q64 = q.to_u64().expect("scaled quotient fits one limb");
    let mut sticky = !r.is_zero();
    // Round the quotient down to 53 bits.
    let extra = (64 - q64.leading_zeros()) as i64 - 53;
    debug_assert!((2..=3).contains(&extra));
    let round = (q64 >> (extra - 1)) & 1 == 1;
    sticky |= q64 & ((1 << (extra - 1)) - 1) != 0;
    let mut m = q64 >> extra;
    if round && (sticky || m & 1 == 1) {
        m += 1;
    }
    let mut e2 = extra - shift;
    if m == 1 << 53 {
        m >>= 1;
        e2 += 1;
    }
    // m · 2^e2, stepping the exponent to avoid spurious overflow. Each
    // step multiplies by an exactly-representable power of two, so no
    // extra rounding occurs for normal results.
    let mut v = m as f64;
    while e2 > 1000 {
        v *= 2f64.powi(1000);
        e2 -= 1000;
    }
    while e2 < -1000 {
        v *= 2f64.powi(-1000);
        e2 += 1000;
    }
    v * 2f64.powi(e2 as i32)
}

fn big(u: &BigUint) -> BigInt {
    if u.is_zero() {
        BigInt::zero()
    } else {
        BigInt::from_sign_mag(Sign::Positive, u.clone())
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ⇔  a*d vs c*b   (b, d > 0)
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            // Cross products are bounded by 2^63·(2^64−1) < 2^127.
            return ((*a as i128) * (*d as i128)).cmp(&((*c as i128) * (*b as i128)));
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = other.big_parts();
        an.mul(&big(&bd)).cmp(&bn.mul(&big(&ad)))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        self.add_ref(rhs)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self.sub_ref(rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        self.mul_ref(rhs)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        self.div_ref(rhs)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.add_ref(&rhs)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.sub_ref(&rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.mul_ref(&rhs)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.div_ref(&rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        self.add_assign_ref(rhs);
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        self.sub_assign_ref(rhs);
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        self.mul_assign_ref(rhs);
    }
}

impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        self.div_assign_ref(rhs);
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        self.add_assign_ref(&rhs);
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        self.sub_assign_ref(&rhs);
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        self.mul_assign_ref(&rhs);
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        self.div_assign_ref(&rhs);
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::from_integer(v)
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational::from_integer(v as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small { num, den } => {
                if *den == 1 {
                    write!(f, "{num}")
                } else {
                    write!(f, "{num}/{den}")
                }
            }
            Repr::Big { num, den } => {
                if den.is_one() {
                    write!(f, "{num}")
                } else {
                    write!(f, "{num}/{den}")
                }
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

/// Sums an iterator of rationals exactly.
pub fn sum<'a, I: IntoIterator<Item = &'a Rational>>(iter: I) -> Rational {
    let mut acc = Rational::zero();
    for r in iter {
        acc.add_assign_ref(r);
    }
    acc
}

/// Error from parsing a [`Rational`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRationalError {
    reason: &'static str,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational: {}", self.reason)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"`, `"-n"`, or `"n/d"` forms (the [`fmt::Display`]
    /// output round-trips). Components must fit in `i128`; larger values
    /// arise only as computation results, never as user input.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (num_str, den_str) = match s.split_once('/') {
            Some((n, d)) => (n.trim(), Some(d.trim())),
            None => (s, None),
        };
        let num: i128 = num_str.parse().map_err(|_| ParseRationalError {
            reason: "numerator is not an integer",
        })?;
        let den: i128 = match den_str {
            Some(d) => d.parse().map_err(|_| ParseRationalError {
                reason: "denominator is not an integer",
            })?,
            None => 1,
        };
        if den == 0 {
            return Err(ParseRationalError {
                reason: "denominator is zero",
            });
        }
        Ok(Rational::new(num, den))
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        let mut acc = Rational::zero();
        for r in iter {
            acc.add_assign_ref(&r);
        }
        acc
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        let mut acc = Rational::zero();
        for r in iter {
            acc.add_assign_ref(r);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, 3), Rational::from_integer(2));
        assert!(r(6, 3).is_integer());
        assert!(!r(1, 3).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut x = r(1, 2);
        x += &r(1, 3);
        assert_eq!(x, r(5, 6));
        x -= r(1, 6);
        assert_eq!(x, r(2, 3));
        x *= &r(3, 4);
        assert_eq!(x, r(1, 2));
        x /= r(1, 4);
        assert_eq!(x, r(2, 1));
        x.sub_mul_assign_ref(&r(1, 2), &r(3, 1));
        assert_eq!(x, r(1, 2));
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(r(-3, 7).recip(), r(-7, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn div_by_zero_panics() {
        let _ = r(1, 2).div_ref(&Rational::zero());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(1, 1000));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor().to_i128(), Some(3));
        assert_eq!(r(7, 2).ceil().to_i128(), Some(4));
        assert_eq!(r(-7, 2).floor().to_i128(), Some(-4));
        assert_eq!(r(-7, 2).ceil().to_i128(), Some(-3));
        assert_eq!(r(4, 2).floor().to_i128(), Some(2));
        assert_eq!(r(4, 2).ceil().to_i128(), Some(2));
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        assert_eq!(Rational::zero().to_f64(), 0.0);
    }

    #[test]
    fn to_f64_rounds_to_nearest_beyond_53_bits() {
        // 2^53 + 1 is exactly halfway between representable neighbors
        // 2^53 and 2^53 + 2: round-half-even takes the even one.
        assert_eq!(r((1 << 53) + 1, 1).to_f64(), (1u64 << 53) as f64);
        // 2^53 + 3 is halfway between 2^53 + 2 and 2^53 + 4: even is +4.
        assert_eq!(r((1 << 53) + 3, 1).to_f64(), ((1u64 << 53) + 4) as f64);
        // Bits below the 53-bit mantissa must round, not truncate:
        // 2^60 + 384 sits past the midpoint 2^60 + 256, so it rounds up
        // to 2^60 + 512 (a truncating conversion yields 2^60 + 256's
        // floor, 2^60).
        assert_eq!(r((1 << 60) + 384, 1).to_f64(), ((1u64 << 60) + 512) as f64);
        // (2^64 − 1)/2^64 = 1 − 2^−64 is within half an ulp of 1.0.
        assert_eq!(r((1 << 64) - 1, 1 << 64).to_f64(), 1.0);
        // Denominator beyond 2^53: 1/(2^64 − 1) rounds to 2^−64.
        assert_eq!(r(1, (1 << 64) - 1).to_f64(), 2f64.powi(-64));
        // Sign carries through the big-component path.
        assert_eq!(
            r(-((1 << 60) + 384), 1).to_f64(),
            -(((1u64 << 60) + 512) as f64)
        );
    }

    #[test]
    fn to_f64_exact_and_halfway_cases_over_random_mantissas() {
        // Deterministic LCG over (mantissa, exponent, denominator) cases.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..200 {
            let m = (1u64 << 52) | (next() >> 12); // 53-bit mantissa
            let e = (next() % 40) as i32; // value = m · 2^e
            let d = (next() >> 1) | 1; // odd denominator
                                       // Exactly representable: (m·2^e·d)/d must convert to m·2^e.
            let scaled = BigUint::from_u64(m).shl(e as usize);
            let n = scaled.mul(&BigUint::from_u64(d));
            let q = Rational::from_parts(big(&n), BigUint::from_u64(d));
            let expect = m as f64 * 2f64.powi(e);
            assert_eq!(q.to_f64(), expect, "m={m} e={e} d={d}");
            // Exactly halfway: (2m+1)·2^(e−1) must round to even mantissa.
            let half = Rational::from_parts(
                big(&BigUint::from_u128(2 * m as u128 + 1).shl(e as usize)),
                BigUint::from_u64(2),
            );
            let rounded = if m.is_multiple_of(2) { m } else { m + 1 };
            let expect_half = rounded as f64 * 2f64.powi(e);
            assert_eq!(half.to_f64(), expect_half, "halfway m={m} e={e}");
        }
    }

    #[test]
    fn to_f64_huge_components() {
        // Both numerator and denominator far beyond f64 range, ratio ~ 2.
        let big = Rational::from_parts(
            BigInt::from_sign_mag(Sign::Positive, BigUint::one().shl(3000)),
            BigUint::one().shl(2999),
        );
        assert!((big.to_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sum_helper() {
        let xs = [r(1, 2), r(1, 3), r(1, 6)];
        assert_eq!(sum(xs.iter()), Rational::one());
        assert_eq!(sum([].iter()), Rational::zero());
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min_ref(&r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max_ref(&r(1, 3)), r(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(-3, 4).to_string(), "-3/4");
        assert_eq!(r(8, 4).to_string(), "2");
    }

    #[test]
    fn parses_display_forms() {
        for s in ["3/4", "-3/4", "2", "-2", "0", " 5 / 10 "] {
            let r: Rational = s.parse().unwrap();
            let back: Rational = r.to_string().parse().unwrap();
            assert_eq!(r, back, "{s}");
        }
        assert_eq!("5/10".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("7".parse::<Rational>().unwrap(), r(7, 1));
        assert_eq!("1/-2".parse::<Rational>().unwrap(), r(-1, 2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1/0".parse::<Rational>().is_err());
        assert!("1/2/3".parse::<Rational>().is_err());
        assert!("1.5".parse::<Rational>().is_err());
    }

    #[test]
    fn iterator_sum() {
        let xs = vec![r(1, 2), r(1, 3), r(1, 6)];
        let owned: Rational = xs.clone().into_iter().sum();
        let borrowed: Rational = xs.iter().sum();
        assert_eq!(owned, Rational::one());
        assert_eq!(borrowed, Rational::one());
    }

    #[test]
    fn small_values_stay_small() {
        assert!(r(1, 2).is_small());
        assert!(Rational::zero().is_small());
        assert!(r(i64::MAX as i128, 1).is_small());
        assert!(r(i64::MIN as i128, 1).is_small());
        assert!(r(1, u64::MAX as i128).is_small());
        let x = r(1, 3) + r(1, 7) * r(100, 13);
        assert!(x.is_small());
    }

    #[test]
    fn promotion_at_overflow_and_demotion_back() {
        // i64::MAX/1 + i64::MAX/1 overflows the small numerator.
        let max = r(i64::MAX as i128, 1);
        let doubled = max.add_ref(&max);
        assert!(!doubled.is_small());
        assert_eq!(doubled, r(2 * (i64::MAX as i128), 1));
        // Subtracting back demotes to the small tier again, and the
        // result is bit-for-bit the original.
        let back = doubled.sub_ref(&max);
        assert!(back.is_small());
        assert_eq!(back, max);
        // Denominator overflow: 1/u64::MAX squared.
        let tiny = r(1, u64::MAX as i128);
        let sq = tiny.mul_ref(&tiny);
        assert!(!sq.is_small());
        assert_eq!(
            sq.recip(),
            r(u64::MAX as i128, 1).mul_ref(&r(u64::MAX as i128, 1))
        );
        // Dividing the square by one factor demotes again.
        let back = sq.div_ref(&tiny);
        assert!(back.is_small());
        assert_eq!(back, tiny);
    }

    #[test]
    fn from_parts_demotes_small_values() {
        let v = Rational::from_parts(BigInt::from_i128(6), BigUint::from_u64(4));
        assert!(v.is_small());
        assert_eq!(v, r(3, 2));
    }

    #[test]
    fn extreme_small_bounds() {
        // i64::MIN is representable and negates across the boundary.
        let min = r(i64::MIN as i128, 1);
        assert!(min.is_small());
        let negated = min.neg_ref();
        assert!(!negated.is_small(), "|i64::MIN| exceeds i64::MAX");
        assert_eq!(negated, r(-(i64::MIN as i128), 1));
        assert_eq!(negated.neg_ref(), min);
        // recip of a value whose denominator exceeds i64::MAX promotes.
        let v = r(1, u64::MAX as i128);
        let flipped = v.recip();
        assert!(!flipped.is_small());
        assert_eq!(flipped, r(u64::MAX as i128, 1));
        let neg = r(-1, u64::MAX as i128).recip();
        assert!(!neg.is_small(), "2^64 − 1 exceeds |i64::MIN|");
        assert_eq!(neg, r(-(u64::MAX as i128), 1));
        // The negative side fits exactly one more magnitude (2^63): the
        // reciprocal of -1/2^63 stays small as i64::MIN.
        let boundary = r(-1, 1i128 << 63).recip();
        assert!(boundary.is_small());
        assert_eq!(boundary, r(i64::MIN as i128, 1));
    }

    #[test]
    fn mixed_tier_arithmetic() {
        let small = r(3, 7);
        let big = r(i64::MAX as i128, 1) + r(i64::MAX as i128, 1);
        assert!(!big.is_small());
        let sum = small.add_ref(&big);
        assert_eq!(sum.sub_ref(&big), small);
        assert_eq!(big.mul_ref(&small).div_ref(&small), big);
        assert!(small < big);
        assert!(big > small);
    }

    #[test]
    fn deep_nesting_does_not_overflow() {
        // Emulates a deep bottom-up tree-weight computation:
        // w <- 1 / (1/w + 1/(w+1)) with fresh primes mixed in so the
        // denominators genuinely grow. i128 arithmetic would overflow
        // long before 90 levels.
        let mut w = r(10007, 3);
        for k in 0..90 {
            let other = r(9973 + k, 7);
            w = (w.recip() + other.recip()).recip() + r(1, 10007);
            assert!(w.is_positive());
        }
        // The value stays in a sane range even though its representation
        // is enormous.
        let f = w.to_f64();
        assert!(f > 0.0 && f < 10000.0, "f = {f}");
    }

    #[test]
    fn word_gcd() {
        assert_eq!(gcd_u128(0, 5), 5);
        assert_eq!(gcd_u128(5, 0), 5);
        assert_eq!(gcd_u128(12, 18), 6);
        assert_eq!(gcd_u128(1 << 70, 1 << 65), 1 << 65);
        assert_eq!(gcd_u128(u128::MAX, u128::MAX), u128::MAX);
        assert_eq!(gcd_u128(7, 13), 1);
    }
}
