//! Exact rational numbers.
//!
//! Steady-state rates, tree weights, and ε-allocations are all rationals;
//! keeping them exact means the "did this tree reach the optimal rate?"
//! verdict in the experiment harness is a true comparison, never a float
//! tolerance.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and `gcd(|num|, den) = 1`
/// (zero is stored as `0/1`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num/den` from machine integers. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let mut n = BigInt::from_i128(num);
        if den < 0 {
            n = n.neg();
        }
        Self::from_parts(n, BigUint::from_u128(den.unsigned_abs()))
    }

    /// Builds from big parts, normalizing. Panics if `den == 0`.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            Rational { num, den }
        } else {
            let mag = num.magnitude().divrem(&g).0;
            Rational {
                num: BigInt::from_sign_mag(num.sign(), mag),
                den: den.divrem(&g).0,
            }
        }
    }

    /// Builds the integer `v`.
    pub fn from_integer(v: i128) -> Self {
        Rational {
            num: BigInt::from_i128(v),
            den: BigUint::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// True if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational {
            num: BigInt::from_sign_mag(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Exact sum.
    pub fn add_ref(&self, other: &Rational) -> Rational {
        // a/b + c/d = (a*d + c*b) / (b*d)
        let num = self
            .num
            .mul(&big(&other.den))
            .add(&other.num.mul(&big(&self.den)));
        Rational::from_parts(num, self.den.mul(&other.den))
    }

    /// Exact difference.
    pub fn sub_ref(&self, other: &Rational) -> Rational {
        self.add_ref(&other.neg_ref())
    }

    /// Exact product.
    pub fn mul_ref(&self, other: &Rational) -> Rational {
        Rational::from_parts(self.num.mul(&other.num), self.den.mul(&other.den))
    }

    /// Exact quotient. Panics if `other` is zero.
    pub fn div_ref(&self, other: &Rational) -> Rational {
        self.mul_ref(&other.recip())
    }

    /// Negation.
    pub fn neg_ref(&self) -> Rational {
        Rational {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// Floor (largest integer ≤ self).
    pub fn floor(&self) -> BigInt {
        let (q, r) = self
            .num
            .divrem(&BigInt::from_sign_mag(Sign::Positive, self.den.clone()));
        if self.num.is_negative() && !r.is_zero() {
            q.sub(&BigInt::one())
        } else {
            q
        }
    }

    /// Ceiling (smallest integer ≥ self).
    pub fn ceil(&self) -> BigInt {
        self.neg_ref().floor().neg()
    }

    /// Approximates as `f64` (display / plotting only — never used in
    /// optimality decisions).
    pub fn to_f64(&self) -> f64 {
        let n = self.num.to_f64();
        let d = self.den.to_f64();
        if d.is_infinite() || n.is_infinite() {
            // Scale both sides down by a common power of two first.
            let nb = self.num.magnitude().bit_len();
            let db = self.den.bit_len();
            let shift = nb.max(db).saturating_sub(512);
            let ns = self.num.magnitude().shr(shift).to_f64();
            let ds = self.den.shr(shift).to_f64();
            let v = ns / ds;
            return if self.num.is_negative() { -v } else { v };
        }
        n / d
    }

    /// `min` by value.
    pub fn min_ref(&self, other: &Rational) -> Rational {
        if self <= other {
            self.clone()
        } else {
            other.clone()
        }
    }

    /// `max` by value.
    pub fn max_ref(&self, other: &Rational) -> Rational {
        if self >= other {
            self.clone()
        } else {
            other.clone()
        }
    }
}

fn big(u: &BigUint) -> BigInt {
    if u.is_zero() {
        BigInt::zero()
    } else {
        BigInt::from_sign_mag(Sign::Positive, u.clone())
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ⇔  a*d vs c*b   (b, d > 0)
        self.num
            .mul(&big(&other.den))
            .cmp(&other.num.mul(&big(&self.den)))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        self.add_ref(rhs)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self.sub_ref(rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        self.mul_ref(rhs)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        self.div_ref(rhs)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.add_ref(&rhs)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.sub_ref(&rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.mul_ref(&rhs)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.div_ref(&rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::from_integer(v)
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational::from_integer(v as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

/// Sums an iterator of rationals exactly.
pub fn sum<'a, I: IntoIterator<Item = &'a Rational>>(iter: I) -> Rational {
    iter.into_iter()
        .fold(Rational::zero(), |acc, r| acc.add_ref(r))
}

/// Error from parsing a [`Rational`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRationalError {
    reason: &'static str,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational: {}", self.reason)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"`, `"-n"`, or `"n/d"` forms (the [`fmt::Display`]
    /// output round-trips). Components must fit in `i128`; larger values
    /// arise only as computation results, never as user input.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (num_str, den_str) = match s.split_once('/') {
            Some((n, d)) => (n.trim(), Some(d.trim())),
            None => (s, None),
        };
        let num: i128 = num_str.parse().map_err(|_| ParseRationalError {
            reason: "numerator is not an integer",
        })?;
        let den: i128 = match den_str {
            Some(d) => d.parse().map_err(|_| ParseRationalError {
                reason: "denominator is not an integer",
            })?,
            None => 1,
        };
        if den == 0 {
            return Err(ParseRationalError {
                reason: "denominator is zero",
            });
        }
        Ok(Rational::new(num, den))
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, r| acc.add_ref(&r))
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, r| acc.add_ref(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, 3), Rational::from_integer(2));
        assert!(r(6, 3).is_integer());
        assert!(!r(1, 3).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(r(-3, 7).recip(), r(-7, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(1, 1000));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor().to_i128(), Some(3));
        assert_eq!(r(7, 2).ceil().to_i128(), Some(4));
        assert_eq!(r(-7, 2).floor().to_i128(), Some(-4));
        assert_eq!(r(-7, 2).ceil().to_i128(), Some(-3));
        assert_eq!(r(4, 2).floor().to_i128(), Some(2));
        assert_eq!(r(4, 2).ceil().to_i128(), Some(2));
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        assert_eq!(Rational::zero().to_f64(), 0.0);
    }

    #[test]
    fn to_f64_huge_components() {
        // Both numerator and denominator far beyond f64 range, ratio ~ 2.
        let big = Rational::from_parts(
            BigInt::from_sign_mag(Sign::Positive, BigUint::one().shl(3000)),
            BigUint::one().shl(2999),
        );
        assert!((big.to_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sum_helper() {
        let xs = [r(1, 2), r(1, 3), r(1, 6)];
        assert_eq!(sum(xs.iter()), Rational::one());
        assert_eq!(sum([].iter()), Rational::zero());
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min_ref(&r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max_ref(&r(1, 3)), r(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(-3, 4).to_string(), "-3/4");
        assert_eq!(r(8, 4).to_string(), "2");
    }

    #[test]
    fn parses_display_forms() {
        for s in ["3/4", "-3/4", "2", "-2", "0", " 5 / 10 "] {
            let r: Rational = s.parse().unwrap();
            let back: Rational = r.to_string().parse().unwrap();
            assert_eq!(r, back, "{s}");
        }
        assert_eq!("5/10".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("7".parse::<Rational>().unwrap(), r(7, 1));
        assert_eq!("1/-2".parse::<Rational>().unwrap(), r(-1, 2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1/0".parse::<Rational>().is_err());
        assert!("1/2/3".parse::<Rational>().is_err());
        assert!("1.5".parse::<Rational>().is_err());
    }

    #[test]
    fn iterator_sum() {
        let xs = vec![r(1, 2), r(1, 3), r(1, 6)];
        let owned: Rational = xs.clone().into_iter().sum();
        let borrowed: Rational = xs.iter().sum();
        assert_eq!(owned, Rational::one());
        assert_eq!(borrowed, Rational::one());
    }

    #[test]
    fn deep_nesting_does_not_overflow() {
        // Emulates a deep bottom-up tree-weight computation:
        // w <- 1 / (1/w + 1/(w+1)) with fresh primes mixed in so the
        // denominators genuinely grow. i128 arithmetic would overflow
        // long before 90 levels.
        let mut w = r(10007, 3);
        for k in 0..90 {
            let other = r(9973 + k, 7);
            w = (w.recip() + other.recip()).recip() + r(1, 10007);
            assert!(w.is_positive());
        }
        // The value stays in a sane range even though its representation
        // is enormous.
        let f = w.to_f64();
        assert!(f > 0.0 && f < 10000.0, "f = {f}");
    }
}
