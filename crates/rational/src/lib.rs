//! # bc-rational — exact arithmetic for bandwidth-centric scheduling
//!
//! Exact rational numbers over arbitrary-precision integers.
//!
//! The steady-state theory of bandwidth-centric scheduling (Beaumont et al.
//! IPDPS'02, Theorem 1 in Kreaseck et al. IPDPS'03) defines the optimal task
//! rate of a tree as a nested rational expression. On the random trees of
//! the paper's campaign (up to 500 nodes, depth past 80) the reduced
//! denominators routinely exceed 128 bits, so this crate provides
//! [`BigUint`] / [`BigInt`] magnitudes and an always-normalized [`Rational`]
//! on top. All optimality verdicts in the workspace use these exact types;
//! `f64` appears only at the display/plotting boundary.
//!
//! ```
//! use bc_rational::Rational;
//!
//! let half = Rational::new(1, 2);
//! let third = Rational::new(1, 3);
//! assert_eq!(&half + &third, Rational::new(5, 6));
//! assert!(half > third);
//! ```

pub mod bigint;
pub mod biguint;
pub mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::{sum, Rational};
