//! Property-based tests for bc-rational: the big-integer layer is checked
//! against native 128-bit arithmetic on values where both apply, and the
//! rational layer against field axioms.

use bc_rational::{BigInt, BigUint, Rational};
use proptest::prelude::*;

fn bu(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #[test]
    fn biguint_add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!(bu(a).add(&bu(b)), bu(a + b));
    }

    #[test]
    fn biguint_sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(bu(hi).sub(&bu(lo)), bu(hi - lo));
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u128..u64::MAX as u128, b in 0u128..u64::MAX as u128) {
        prop_assert_eq!(bu(a).mul(&bu(b)), bu(a * b));
    }

    #[test]
    fn biguint_divrem_matches_u128(a in 0u128..u128::MAX, b in 1u128..u128::MAX) {
        let (q, r) = bu(a).divrem(&bu(b));
        prop_assert_eq!(q, bu(a / b));
        prop_assert_eq!(r, bu(a % b));
    }

    #[test]
    fn biguint_divrem_reconstructs(a in prop::collection::vec(any::<u64>(), 1..6),
                                   b in prop::collection::vec(any::<u64>(), 1..4)) {
        // Build multi-limb values from random limbs via shifts and adds.
        let build = |limbs: &[u64]| {
            limbs.iter().enumerate().fold(BigUint::zero(), |acc, (i, &l)| {
                acc.add(&BigUint::from_u64(l).shl(64 * i))
            })
        };
        let n = build(&a);
        let d = build(&b);
        prop_assume!(!d.is_zero());
        let (q, r) = n.divrem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), n);
        prop_assert!(r < d);
    }

    #[test]
    fn biguint_gcd_properties(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let g = bu(a).gcd(&bu(b));
        if a == 0 && b == 0 {
            prop_assert!(g.is_zero());
        } else {
            prop_assert!(!g.is_zero());
            if a != 0 {
                prop_assert!(bu(a).divrem(&g).1.is_zero());
            }
            if b != 0 {
                prop_assert!(bu(b).divrem(&g).1.is_zero());
            }
        }
    }

    #[test]
    fn biguint_shift_round_trip(a in 0u128..u128::MAX, s in 0usize..200) {
        prop_assert_eq!(bu(a).shl(s).shr(s), bu(a));
    }

    #[test]
    fn bigint_add_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!(BigInt::from_i128(a).add(&BigInt::from_i128(b)).to_i128(), Some(a + b));
    }

    #[test]
    fn bigint_mul_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!(BigInt::from_i128(a).mul(&BigInt::from_i128(b)).to_i128(), Some(a * b));
    }

    #[test]
    fn bigint_divrem_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        prop_assume!(b != 0);
        let (a, b) = (a as i128, b as i128);
        let (q, r) = BigInt::from_i128(a).divrem(&BigInt::from_i128(b));
        prop_assert_eq!(q.to_i128(), Some(a / b));
        prop_assert_eq!(r.to_i128(), Some(a % b));
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(
            BigInt::from_i128(a as i128).cmp(&BigInt::from_i128(b as i128)),
            a.cmp(&b)
        );
    }

    #[test]
    fn rational_add_commutes(an in -1000i128..1000, ad in 1i128..1000,
                             bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn rational_add_associates(an in -100i128..100, ad in 1i128..100,
                               bn in -100i128..100, bd in 1i128..100,
                               cn in -100i128..100, cd in 1i128..100) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
    }

    #[test]
    fn rational_mul_distributes(an in -100i128..100, ad in 1i128..100,
                                bn in -100i128..100, bd in 1i128..100,
                                cn in -100i128..100, cd in 1i128..100) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(
            a.mul_ref(&b.add_ref(&c)),
            a.mul_ref(&b).add_ref(&a.mul_ref(&c))
        );
    }

    #[test]
    fn rational_additive_inverse(an in -1000i128..1000, ad in 1i128..1000) {
        let a = Rational::new(an, ad);
        prop_assert!(a.add_ref(&a.neg_ref()).is_zero());
    }

    #[test]
    fn rational_multiplicative_inverse(an in 1i128..1000, ad in 1i128..1000) {
        let a = Rational::new(an, ad);
        prop_assert_eq!(a.mul_ref(&a.recip()), Rational::one());
    }

    #[test]
    fn rational_ordering_matches_f64(an in -1000i128..1000, ad in 1i128..1000,
                                     bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        // Only check when the float comparison is unambiguous.
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_sub_then_add_round_trips(an in -1000i128..1000, ad in 1i128..1000,
                                         bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        prop_assert_eq!(a.sub_ref(&b).add_ref(&b), a);
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -1000i128..1000, ad in 1i128..1000) {
        let a = Rational::new(an, ad);
        let fl = Rational::from_parts(a.floor(), BigUint::one());
        let ce = Rational::from_parts(a.ceil(), BigUint::one());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(ce.sub_ref(&fl) <= Rational::one());
    }
}
