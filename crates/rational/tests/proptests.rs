//! Property-based tests for bc-rational: the big-integer layer is checked
//! against native 128-bit arithmetic on values where both apply, and the
//! rational layer against field axioms.

use bc_rational::{BigInt, BigUint, Rational};
use proptest::prelude::*;

fn bu(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #[test]
    fn biguint_add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!(bu(a).add(&bu(b)), bu(a + b));
    }

    #[test]
    fn biguint_sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(bu(hi).sub(&bu(lo)), bu(hi - lo));
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u128..u64::MAX as u128, b in 0u128..u64::MAX as u128) {
        prop_assert_eq!(bu(a).mul(&bu(b)), bu(a * b));
    }

    #[test]
    fn biguint_divrem_matches_u128(a in 0u128..u128::MAX, b in 1u128..u128::MAX) {
        let (q, r) = bu(a).divrem(&bu(b));
        prop_assert_eq!(q, bu(a / b));
        prop_assert_eq!(r, bu(a % b));
    }

    #[test]
    fn biguint_divrem_reconstructs(a in prop::collection::vec(any::<u64>(), 1..6),
                                   b in prop::collection::vec(any::<u64>(), 1..4)) {
        // Build multi-limb values from random limbs via shifts and adds.
        let build = |limbs: &[u64]| {
            limbs.iter().enumerate().fold(BigUint::zero(), |acc, (i, &l)| {
                acc.add(&BigUint::from_u64(l).shl(64 * i))
            })
        };
        let n = build(&a);
        let d = build(&b);
        prop_assume!(!d.is_zero());
        let (q, r) = n.divrem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), n);
        prop_assert!(r < d);
    }

    #[test]
    fn biguint_gcd_properties(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let g = bu(a).gcd(&bu(b));
        if a == 0 && b == 0 {
            prop_assert!(g.is_zero());
        } else {
            prop_assert!(!g.is_zero());
            if a != 0 {
                prop_assert!(bu(a).divrem(&g).1.is_zero());
            }
            if b != 0 {
                prop_assert!(bu(b).divrem(&g).1.is_zero());
            }
        }
    }

    #[test]
    fn biguint_shift_round_trip(a in 0u128..u128::MAX, s in 0usize..200) {
        prop_assert_eq!(bu(a).shl(s).shr(s), bu(a));
    }

    #[test]
    fn bigint_add_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!(BigInt::from_i128(a).add(&BigInt::from_i128(b)).to_i128(), Some(a + b));
    }

    #[test]
    fn bigint_mul_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!(BigInt::from_i128(a).mul(&BigInt::from_i128(b)).to_i128(), Some(a * b));
    }

    #[test]
    fn bigint_divrem_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        prop_assume!(b != 0);
        let (a, b) = (a as i128, b as i128);
        let (q, r) = BigInt::from_i128(a).divrem(&BigInt::from_i128(b));
        prop_assert_eq!(q.to_i128(), Some(a / b));
        prop_assert_eq!(r.to_i128(), Some(a % b));
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(
            BigInt::from_i128(a as i128).cmp(&BigInt::from_i128(b as i128)),
            a.cmp(&b)
        );
    }

    #[test]
    fn rational_add_commutes(an in -1000i128..1000, ad in 1i128..1000,
                             bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn rational_add_associates(an in -100i128..100, ad in 1i128..100,
                               bn in -100i128..100, bd in 1i128..100,
                               cn in -100i128..100, cd in 1i128..100) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
    }

    #[test]
    fn rational_mul_distributes(an in -100i128..100, ad in 1i128..100,
                                bn in -100i128..100, bd in 1i128..100,
                                cn in -100i128..100, cd in 1i128..100) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(
            a.mul_ref(&b.add_ref(&c)),
            a.mul_ref(&b).add_ref(&a.mul_ref(&c))
        );
    }

    #[test]
    fn rational_additive_inverse(an in -1000i128..1000, ad in 1i128..1000) {
        let a = Rational::new(an, ad);
        prop_assert!(a.add_ref(&a.neg_ref()).is_zero());
    }

    #[test]
    fn rational_multiplicative_inverse(an in 1i128..1000, ad in 1i128..1000) {
        let a = Rational::new(an, ad);
        prop_assert_eq!(a.mul_ref(&a.recip()), Rational::one());
    }

    #[test]
    fn rational_ordering_matches_f64(an in -1000i128..1000, ad in 1i128..1000,
                                     bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        // Only check when the float comparison is unambiguous.
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_sub_then_add_round_trips(an in -1000i128..1000, ad in 1i128..1000,
                                         bn in -1000i128..1000, bd in 1i128..1000) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        prop_assert_eq!(a.sub_ref(&b).add_ref(&b), a);
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -1000i128..1000, ad in 1i128..1000) {
        let a = Rational::new(an, ad);
        let fl = Rational::from_parts(a.floor(), BigUint::one());
        let ce = Rational::from_parts(a.ceil(), BigUint::one());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(ce.sub_ref(&fl) <= Rational::one());
    }
}

// ---------------------------------------------------------------------
// Small-path / big-path equivalence.
//
// `Rational` keeps word-sized values on an inline fast path and promotes
// to `BigInt`/`BigUint` at overflow. Every operation below is computed
// twice: once through `Rational` (which picks the path) and once through
// a forced-bignum reference built directly from the public big-integer
// API. `from_parts` canonicalizes, so agreement means the two paths are
// bit-for-bit interchangeable, including promotion at overflow and
// demotion when results shrink back.
// ---------------------------------------------------------------------

fn bi(v: i128) -> BigInt {
    BigInt::from_i128(v)
}

fn ref_add(an: i64, ad: u64, bn: i64, bd: u64) -> Rational {
    let num = bi(an as i128)
        .mul(&bi(bd as i128))
        .add(&bi(bn as i128).mul(&bi(ad as i128)));
    Rational::from_parts(num, BigUint::from_u64(ad).mul(&BigUint::from_u64(bd)))
}

fn ref_mul(an: i64, ad: u64, bn: i64, bd: u64) -> Rational {
    Rational::from_parts(
        bi(an as i128).mul(&bi(bn as i128)),
        BigUint::from_u64(ad).mul(&BigUint::from_u64(bd)),
    )
}

proptest! {
    #[test]
    fn small_add_matches_bignum_reference(an in any::<i64>(), ad in 1u64..=u64::MAX,
                                          bn in any::<i64>(), bd in 1u64..=u64::MAX) {
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        let expect = ref_add(an, ad, bn, bd);
        prop_assert_eq!(a.add_ref(&b), expect.clone());
        let mut in_place = a.clone();
        in_place.add_assign_ref(&b);
        prop_assert_eq!(in_place, expect);
    }

    #[test]
    fn small_sub_matches_bignum_reference(an in any::<i64>(), ad in 1u64..=u64::MAX,
                                          bn in any::<i64>(), bd in 1u64..=u64::MAX) {
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        let num = bi(an as i128)
            .mul(&bi(bd as i128))
            .sub(&bi(bn as i128).mul(&bi(ad as i128)));
        let expect =
            Rational::from_parts(num, BigUint::from_u64(ad).mul(&BigUint::from_u64(bd)));
        prop_assert_eq!(a.sub_ref(&b), expect.clone());
        let mut in_place = a.clone();
        in_place.sub_assign_ref(&b);
        prop_assert_eq!(in_place, expect);
    }

    #[test]
    fn small_mul_matches_bignum_reference(an in any::<i64>(), ad in 1u64..=u64::MAX,
                                          bn in any::<i64>(), bd in 1u64..=u64::MAX) {
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        let expect = ref_mul(an, ad, bn, bd);
        prop_assert_eq!(a.mul_ref(&b), expect.clone());
        let mut in_place = a.clone();
        in_place.mul_assign_ref(&b);
        prop_assert_eq!(in_place, expect);
    }

    #[test]
    fn small_div_matches_bignum_reference(an in any::<i64>(), ad in 1u64..=u64::MAX,
                                          bn in any::<i64>(), bd in 1u64..=u64::MAX) {
        prop_assume!(bn != 0);
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        // a/b ÷ c/d = (a·d)/(b·c), built entirely in bignum.
        let num = bi(an as i128).mul(&bi(bd as i128));
        let den = bi(ad as i128).mul(&bi(bn as i128));
        let expect = Rational::from_parts(
            if den.is_negative() { num.neg() } else { num },
            den.magnitude().clone(),
        );
        prop_assert_eq!(a.div_ref(&b), expect.clone());
        let mut in_place = a.clone();
        in_place.div_assign_ref(&b);
        prop_assert_eq!(in_place, expect);
    }

    #[test]
    fn small_recip_matches_bignum_reference(an in any::<i64>(), ad in 1u64..=u64::MAX) {
        prop_assume!(an != 0);
        let a = Rational::new(an as i128, ad as i128);
        let num = bi(ad as i128);
        let expect = Rational::from_parts(
            if an < 0 { num.neg() } else { num },
            BigUint::from_u128(an.unsigned_abs() as u128),
        );
        prop_assert_eq!(a.recip(), expect);
    }

    #[test]
    fn small_floor_ceil_match_i128(an in any::<i64>(), ad in 1u64..=u64::MAX) {
        let a = Rational::new(an as i128, ad as i128);
        prop_assert_eq!(a.floor().to_i128(), Some((an as i128).div_euclid(ad as i128)));
        prop_assert_eq!(
            a.ceil().to_i128(),
            Some(-(-(an as i128)).div_euclid(ad as i128))
        );
    }

    #[test]
    fn small_cmp_matches_cross_products(an in any::<i64>(), ad in 1u64..=u64::MAX,
                                        bn in any::<i64>(), bd in 1u64..=u64::MAX) {
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        let truth = ((an as i128) * (bd as i128)).cmp(&((bn as i128) * (ad as i128)));
        prop_assert_eq!(a.cmp(&b), truth);
        // min/max agree with the ordering.
        let (lo, hi) = if truth.is_le() { (&a, &b) } else { (&b, &a) };
        prop_assert_eq!(&a.min_ref(&b), lo);
        prop_assert_eq!(&a.max_ref(&b), hi);
    }

    #[test]
    fn promotion_and_demotion_round_trip(an in any::<i64>(), ad in 1u64..=u64::MAX,
                                         bn in any::<i64>(), bd in 1u64..=u64::MAX) {
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        prop_assert!(a.is_small() && b.is_small());
        // Whatever tier the intermediates land on, exact arithmetic must
        // round-trip — and a recovered small value must be stored small
        // again (canonical demotion).
        let sum = a.add_ref(&b);
        let back = sum.sub_ref(&b);
        prop_assert_eq!(back.clone(), a.clone());
        prop_assert!(back.is_small());
        if !b.is_zero() {
            let prod = a.mul_ref(&b);
            let back = prod.div_ref(&b);
            prop_assert_eq!(back.clone(), a.clone());
            prop_assert!(back.is_small());
        }
    }

    #[test]
    fn forced_big_operands_agree_with_small(an in -1000i64..1000, ad in 1u64..1000,
                                            bn in -1000i64..1000, bd in 1u64..1000,
                                            shift in 70usize..120) {
        // Scale both operands by 2^shift / 2^shift (numerator and
        // denominator) so they must take the big representation, then
        // check every operation agrees with the small-path result.
        prop_assume!(an != 0 && bn != 0);
        let a_small = Rational::new(an as i128, ad as i128);
        let b_small = Rational::new(bn as i128, bd as i128);
        let scale = |n: i64, d: u64| {
            // (n·2^shift + n') / (d·2^shift + d') with n' = n, d' = d is
            // not equal to n/d, so instead force bigness via an exactly
            // cancelling odd factor: (n·k)/(d·k) with k = 2^shift + 1.
            let k = BigUint::one().shl(shift).add(&BigUint::one());
            let num = bi(n as i128).mul(&BigInt::from_sign_mag(bc_rational::Sign::Positive, k.clone()));
            Rational::from_parts(num, BigUint::from_u64(d).mul(&k))
        };
        let a_big = scale(an, ad);
        let b_big = scale(bn, bd);
        // from_parts reduces the common factor away, so the values are
        // equal and small again — this asserts the reduction itself.
        prop_assert_eq!(a_big.clone(), a_small.clone());
        prop_assert!(a_big.is_small());
        prop_assert_eq!(a_big.add_ref(&b_big), a_small.add_ref(&b_small));
        prop_assert_eq!(a_big.mul_ref(&b_big), a_small.mul_ref(&b_small));
        prop_assert_eq!(a_big.div_ref(&b_big), a_small.div_ref(&b_small));
        prop_assert_eq!(a_big.cmp(&b_big), a_small.cmp(&b_small));
    }

    #[test]
    fn big_results_demote_exactly_once_reduced(an in any::<i64>(), bn in any::<i64>()) {
        // i64-extreme sums overflow the small tier; the value is still
        // exact and demotes back on subtraction.
        let a = Rational::new(an as i128, 1);
        let b = Rational::new(bn as i128, 1);
        let sum = a.add_ref(&b);
        let expect_small = (an as i128 + bn as i128) >= i64::MIN as i128
            && (an as i128 + bn as i128) <= i64::MAX as i128;
        prop_assert_eq!(sum.is_small(), expect_small);
        prop_assert_eq!(sum.sub_ref(&b), a);
    }
}
