//! Quickstart: build a small heterogeneous platform, compute its optimal
//! steady-state rate from theory, and watch the autonomous protocol reach
//! it with only local information and 3 buffers per node.
//!
//! Run with: `cargo run --release --example quickstart`

use bandwidth_centric::prelude::*;

fn main() {
    // A two-site platform: the repository P0 computes a task in 5 steps;
    // one fast-link subtree and one slower-link subtree hang below it.
    let mut tree = Tree::new(5);
    let fast = tree.add_child(NodeId::ROOT, 1, 3); // c=1, w=3
    tree.add_child(fast, 1, 4);
    tree.add_child(fast, 2, 4);
    let slow = tree.add_child(NodeId::ROOT, 3, 5); // c=3, w=5
    tree.add_child(slow, 6, 6);

    // --- Theory: Theorem 1, bottom-up ---------------------------------
    let analysis = SteadyState::analyze(&tree);
    println!(
        "platform: {}",
        bandwidth_centric::platform::io::to_compact(&tree)
    );
    println!(
        "optimal steady-state rate  R = {} ≈ {:.4} tasks/timestep",
        analysis.optimal_rate(),
        analysis.optimal_rate().to_f64()
    );
    println!(
        "schedule-period LCM bound (why autonomous protocols exist): {}",
        period_bound(&tree)
    );

    // The LP oracle agrees with the closed form.
    assert_eq!(lp_optimal_rate(&tree), analysis.optimal_rate());

    // --- Practice: the autonomous interruptible protocol --------------
    let tasks = 5_000u64;
    let run = Simulation::new(tree, SimConfig::interruptible(3, tasks)).run();

    // Measure the steady window and compare to the optimum.
    let onset = detect_onset(
        &run.completion_times,
        &analysis.optimal_rate(),
        OnsetConfig::default(),
    );
    let mid = &run.completion_times[tasks as usize / 4..tasks as usize * 3 / 4];
    let measured = (mid.len() - 1) as f64 / (mid[mid.len() - 1] - mid[0]) as f64;
    println!("\nsimulated {} tasks in {} timesteps", tasks, run.end_time);
    println!(
        "measured steady rate ≈ {:.4} tasks/timestep ({:.1}% of optimal)",
        measured,
        100.0 * measured / analysis.optimal_rate().to_f64()
    );
    match onset {
        Some(w) => println!("optimal steady state detected at window {w}"),
        None => println!("optimal steady state not detected (try more tasks)"),
    }
    println!(
        "per-node tasks: {:?}  (buffers never exceeded {})",
        run.tasks_per_node,
        run.max_buffers()
    );
}
