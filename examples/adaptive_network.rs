//! Adaptive network: the §4.2.3 scenario as an application. A volunteer-
//! computing platform (the Fig 1 tree) degrades and recovers mid-run; the
//! autonomous protocol adapts with no global coordination because every
//! decision reads only locally observable state.
//!
//! Run with: `cargo run --release --example adaptive_network`

use bandwidth_centric::platform::examples::{fig1_p1, fig1_tree};
use bandwidth_centric::prelude::*;

fn phase_rate(times: &[u64], from_task: usize, to_task: usize) -> f64 {
    (to_task - from_task) as f64 / (times[to_task - 1] - times[from_task - 1]) as f64
}

fn main() {
    let tasks = 1_200u64;

    // Scenario: after 300 tasks the link to P1 congests (c1: 1 → 3);
    // after 800 tasks the congestion clears.
    let cfg = SimConfig::non_interruptible_fixed(2, tasks)
        .with_change(PlannedChange {
            after_tasks: 300,
            node: fig1_p1(),
            kind: ChangeKind::CommTime(3),
        })
        .with_change(PlannedChange {
            after_tasks: 800,
            node: fig1_p1(),
            kind: ChangeKind::CommTime(1),
        });

    // Reference optima for the two platform states.
    let healthy = SteadyState::analyze(&fig1_tree()).optimal_rate();
    let mut congested_tree = fig1_tree();
    congested_tree.set_comm_time(fig1_p1(), 3);
    let congested = SteadyState::analyze(&congested_tree).optimal_rate();

    println!("platform: the Figure 1 tree; perturbing P1's uplink mid-run");
    println!(
        "optimal rate healthy:   {} ≈ {:.3}",
        healthy,
        healthy.to_f64()
    );
    println!(
        "optimal rate congested: {} ≈ {:.3}\n",
        congested,
        congested.to_f64()
    );

    let run = Simulation::new(fig1_tree(), cfg).run();
    let t = &run.completion_times;

    for (label, from, to, reference) in [
        ("healthy   (tasks 100–300)", 100usize, 300usize, &healthy),
        ("congested (tasks 450–750)", 450, 750, &congested),
        ("recovered (tasks 950–1150)", 950, 1150, &healthy),
    ] {
        let measured = phase_rate(t, from, to);
        println!(
            "{label}: measured {:.3} tasks/step vs optimal {:.3} ({:.1}%)",
            measured,
            reference.to_f64(),
            100.0 * measured / reference.to_f64()
        );
    }
    println!("\ntotal: {} tasks in {} timesteps", tasks, run.end_time);
    println!("the protocol re-prioritized P1 locally — no node ever saw the whole tree");
}
