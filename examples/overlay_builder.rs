//! Overlay builder: the paper's §6 future work in action. Given a
//! general platform graph (more links than a tree needs), compare tree
//! overlays by the steady-state rate they admit, then validate the
//! winner by simulation.
//!
//! Run with: `cargo run --release --example overlay_builder`

use bandwidth_centric::prelude::*;

fn main() {
    // A 40-node wide-area platform with redundant links.
    let graph = PlatformGraph::random(40, 70, (1, 80), (200, 8_000), 17);
    println!("platform graph: 40 vertices, redundant links, repository at vertex 0\n");

    let candidates = [
        ("BFS overlay (min hops)", graph.bfs_overlay()),
        ("min-comm overlay (Prim on c)", graph.min_comm_overlay()),
        ("random spanning overlay", graph.random_overlay(5)),
    ];

    let mut best: Option<(&str, Tree, Rational)> = None;
    for (name, tree) in candidates {
        let rate = SteadyState::analyze(&tree).optimal_rate();
        println!(
            "{name:30} depth {:2}  optimal rate ≈ {:.5}",
            tree.depth(),
            rate.to_f64()
        );
        if best.as_ref().is_none_or(|(_, _, r)| rate > *r) {
            best = Some((name, tree, rate));
        }
    }
    let (name, tree, rate) = best.expect("three candidates");

    println!("\nbest overlay: {name}");
    let tasks = 3_000u64;
    let run = Simulation::new(tree, SimConfig::interruptible(3, tasks)).run();
    let n = run.completion_times.len();
    let (lo, hi) = (n / 4, n * 3 / 4);
    let measured = (hi - lo) as f64 / (run.completion_times[hi] - run.completion_times[lo]) as f64;
    println!(
        "simulated {tasks} tasks: measured steady rate ≈ {:.5} \
         ({:.1}% of the overlay's optimum)",
        measured,
        100.0 * measured / rate.to_f64()
    );
}
