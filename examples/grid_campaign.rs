//! Grid campaign: deploy a parameter-sweep-style application (many
//! identical independent tasks — the paper's motivating workload class:
//! SETI@home-style search, parameter sweeps, genomics scans) over a fleet
//! of random wide-area platforms and compare the autonomous protocols
//! against the theoretical optimum and against the baselines.
//!
//! Run with: `cargo run --release --example grid_campaign [-- <trees>]`

use bandwidth_centric::prelude::*;
use bandwidth_centric::simcore::split_seed;

struct Outcome {
    reached: usize,
    mean_efficiency: f64,
    max_buffers: u32,
}

fn evaluate(label: &str, trees: usize, _tasks: u64, make: impl Fn() -> SimConfig) -> Outcome {
    let mut reached = 0;
    let mut eff_sum = 0.0;
    let mut max_buffers = 0;
    for i in 0..trees {
        let tree = RandomTreeConfig::default().generate(split_seed(99, i as u64));
        let optimal = SteadyState::analyze(&tree).optimal_rate();
        let run = Simulation::new(tree, make()).run();
        if detect_onset(&run.completion_times, &optimal, OnsetConfig::default()).is_some() {
            reached += 1;
        }
        // Efficiency: measured mid-run rate / optimal rate.
        let n = run.completion_times.len();
        let (lo, hi) = (n / 4, n * 3 / 4);
        let rate = (hi - lo) as f64 / (run.completion_times[hi] - run.completion_times[lo]) as f64;
        eff_sum += rate / optimal.to_f64();
        max_buffers = max_buffers.max(run.max_buffers());
    }
    let outcome = Outcome {
        reached,
        mean_efficiency: eff_sum / trees as f64,
        max_buffers,
    };
    println!(
        "{label:28} reached optimal on {reached}/{trees} platforms, \
         mean efficiency {:.1}%, max buffers {}",
        100.0 * outcome.mean_efficiency,
        outcome.max_buffers
    );
    outcome
}

fn main() {
    let trees: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("tree count"))
        .unwrap_or(30);
    let tasks = 10_000;
    println!("campaign: {trees} random platforms × {tasks} tasks each\n");

    let ic3 = evaluate("IC, FB=3 (the paper's pick)", trees, tasks, || {
        SimConfig::interruptible(3, tasks)
    });
    evaluate("IC, FB=1", trees, tasks, || {
        SimConfig::interruptible(1, tasks)
    });
    let nonic = evaluate("non-IC, IB=1 (growable)", trees, tasks, || {
        SimConfig::non_interruptible(1, tasks)
    });
    evaluate("baseline: compute-centric", trees, tasks, || {
        let mut c = SimConfig::interruptible(3, tasks);
        c.selector = SelectorKind::ComputeCentric;
        c
    });
    evaluate("baseline: round-robin", trees, tasks, || {
        let mut c = SimConfig::interruptible(3, tasks);
        c.selector = SelectorKind::RoundRobin;
        c
    });

    println!(
        "\nheadline: IC/FB=3 reached the optimum on {}/{trees} platforms with \
         ≤3 buffers; non-IC needed up to {} buffers.",
        ic3.reached, nonic.max_buffers
    );
}
