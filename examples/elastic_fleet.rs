//! Elastic fleet: a volunteer-computing scenario. The platform starts as
//! a single repository; workers join over time (some behind fast links,
//! some slow), a whole site departs mid-run taking its tasks with it
//! (the repository re-dispatches them), and replacements arrive. The
//! autonomous protocol handles every transition with purely local
//! decisions — this is the paper's §3 scalability claim, exercised.
//!
//! Run with: `cargo run --release --example elastic_fleet`

use bandwidth_centric::prelude::*;

fn join(after_tasks: u64, parent: NodeId, comm: u64, compute: u64) -> PlannedChange {
    PlannedChange {
        after_tasks,
        node: parent,
        kind: ChangeKind::Join { comm, compute },
    }
}

fn leave(after_tasks: u64, node: NodeId) -> PlannedChange {
    PlannedChange {
        after_tasks,
        node,
        kind: ChangeKind::Leave,
    }
}

fn phase_rate(times: &[u64], from: usize, to: usize) -> f64 {
    (to - from) as f64 / (times[to - 1] - times[from - 1]) as f64
}

fn main() {
    let tasks = 3_000u64;
    // The repository alone: w0 = 20.
    let tree = Tree::new(20);

    // Script: ids are deterministic (next arena index per join).
    //   task  100: P1 joins root   (c=1, w=4)   — fast link
    //   task  300: P2 joins root   (c=3, w=3)
    //   task  500: P3 joins P1     (c=1, w=4)   — site grows under P1
    //   task  700: P4 joins P1     (c=2, w=5)
    //   task 1500: P1's whole site departs (P1, P3, P4)
    //   task 1800: P5 joins root   (c=1, w=2)   — strong replacement
    let cfg = SimConfig::interruptible(3, tasks)
        .with_change(join(100, NodeId::ROOT, 1, 4))
        .with_change(join(300, NodeId::ROOT, 3, 3))
        .with_change(join(500, NodeId(1), 1, 4))
        .with_change(join(700, NodeId(1), 2, 5))
        .with_change(leave(1_500, NodeId(1)))
        .with_change(join(1_800, NodeId::ROOT, 1, 2));

    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), tasks);

    println!(
        "elastic fleet: {} tasks over a platform that grew, shrank, and regrew\n",
        tasks
    );
    let phases = [
        ("solo repository      (tasks  20–90)  ", 20, 90),
        ("P1 joined            (150–280)       ", 150, 280),
        ("P2 joined            (350–480)       ", 350, 480),
        ("site grown (P3, P4)  (900–1400)      ", 900, 1400),
        ("site departed        (1550–1750)     ", 1550, 1750),
        ("replacement joined   (2200–2900)     ", 2200, 2900),
    ];
    for (label, lo, hi) in phases {
        println!(
            "{label} rate ≈ {:.3} tasks/timestep",
            phase_rate(&run.completion_times, lo, hi)
        );
    }

    println!("\nper-node tasks computed: {:?}", run.tasks_per_node);
    println!(
        "total wall time: {} timesteps; no task was lost across {} topology changes",
        run.end_time, 6
    );
}
