//! Property-based agreement between the analytic layer and the
//! simulator: on random platforms the IC/FB=3 protocol's measured steady
//! rate approaches — and never exceeds — the Theorem 1 optimum.

use bandwidth_centric::prelude::*;
use bandwidth_centric::steady::makespan_lower_bound;
use proptest::prelude::*;

fn mid_rate(times: &[u64]) -> f64 {
    let (lo, hi) = (times.len() / 4, times.len() * 3 / 4);
    (hi - lo) as f64 / ((times[hi] - times[lo]).max(1)) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulated rate is bounded by the optimum (up to windowing
    /// noise) on arbitrary random platforms.
    #[test]
    fn simulation_respects_the_upper_bound(seed in 0u64..5_000) {
        let tree = RandomTreeConfig {
            min_nodes: 5,
            max_nodes: 60,
            comm_min: 1,
            comm_max: 25,
            compute_scale: 300,
        }
        .generate(seed);
        let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();
        let run = Simulation::new(tree, SimConfig::interruptible(3, 2_000)).run();
        let measured = mid_rate(&run.completion_times);
        prop_assert!(
            measured <= optimal * 1.03,
            "seed {}: measured {} vs optimal {}", seed, measured, optimal
        );
    }

    /// On bandwidth-ample platforms (every child's link fast relative to
    /// its compute), FB=3 attains ≥ 90% of the optimum within 2 000 tasks.
    #[test]
    fn simulation_approaches_the_bound_when_bandwidth_is_ample(seed in 0u64..5_000) {
        let tree = RandomTreeConfig {
            min_nodes: 5,
            max_nodes: 40,
            comm_min: 1,
            comm_max: 5,
            compute_scale: 400,
        }
        .generate(seed);
        let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();
        let run = Simulation::new(tree, SimConfig::interruptible(3, 2_000)).run();
        let measured = mid_rate(&run.completion_times);
        prop_assert!(
            measured >= 0.9 * optimal,
            "seed {}: measured {} of optimal {}", seed, measured, optimal
        );
    }

    /// No execution beats the rate-based makespan lower bound.
    #[test]
    fn makespan_lower_bound_holds(seed in 0u64..5_000, fb in 1u32..4) {
        let tree = RandomTreeConfig {
            min_nodes: 3,
            max_nodes: 30,
            comm_min: 1,
            comm_max: 15,
            compute_scale: 100,
        }
        .generate(seed);
        let tasks = 500;
        let bound = makespan_lower_bound(&tree, tasks);
        let run = Simulation::new(tree, SimConfig::interruptible(fb, tasks)).run();
        prop_assert!(
            run.end_time >= bound,
            "seed {}: finished at {} before the bound {}", seed, run.end_time, bound
        );
    }

    /// Task conservation and trace sanity hold for every protocol variant.
    #[test]
    fn conservation_across_variants(seed in 0u64..5_000, variant in 0usize..4) {
        let tree = RandomTreeConfig {
            min_nodes: 3,
            max_nodes: 30,
            comm_min: 1,
            comm_max: 15,
            compute_scale: 100,
        }
        .generate(seed);
        let tasks = 400;
        let cfg = match variant {
            0 => SimConfig::interruptible(1, tasks),
            1 => SimConfig::interruptible(3, tasks),
            2 => SimConfig::non_interruptible(1, tasks),
            _ => SimConfig::non_interruptible_fixed(2, tasks),
        };
        let run = Simulation::new(tree, cfg).run();
        prop_assert_eq!(run.tasks_completed(), tasks);
        prop_assert_eq!(run.tasks_per_node.iter().sum::<u64>(), tasks);
        prop_assert!(run.completion_times.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*run.completion_times.last().unwrap(), run.end_time);
    }

    /// The optimal rate is monotone under platform improvements: speeding
    /// up a node or a link never lowers the Theorem 1 rate. (A pure
    /// theory property, but one the simulator's adaptability experiment
    /// depends on.)
    #[test]
    fn optimum_is_monotone_in_weights(seed in 0u64..5_000) {
        let tree = RandomTreeConfig {
            min_nodes: 3,
            max_nodes: 25,
            comm_min: 2,
            comm_max: 20,
            compute_scale: 60,
        }
        .generate(seed);
        let base = SteadyState::analyze(&tree).optimal_rate();
        // Halve the compute time of node 1 (always exists: min 3 nodes).
        let node = NodeId(1);
        let mut faster = tree.clone();
        faster.set_compute_time(node, (tree.compute_time(node) / 2).max(1));
        prop_assert!(SteadyState::analyze(&faster).optimal_rate() >= base);
        // Halve its link time too.
        let mut faster_link = tree.clone();
        faster_link.set_comm_time(node, (tree.comm_time(node) / 2).max(1));
        prop_assert!(SteadyState::analyze(&faster_link).optimal_rate() >= base);
    }
}
