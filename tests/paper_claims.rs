//! The claims ledger: one test per quoted claim from the paper, each
//! verified against this implementation at reduced (but shape-preserving)
//! scale. Quotes are verbatim from Kreaseck et al., IPDPS 2003.

use bandwidth_centric::experiments::campaign::{fraction_reached, run_campaign, CampaignConfig};
use bandwidth_centric::platform::examples::{fig1_p1, fig1_tree};
use bandwidth_centric::prelude::*;
use bandwidth_centric::steady::period_bound;

fn paper_campaign(trees: usize, tasks: u64) -> CampaignConfig {
    CampaignConfig::paper(trees, tasks, 2003)
}

/// §Abstract: "our autonomous protocol with interruptible communication
/// and only 3 buffers per node reaches the optimal steady-state
/// performance in over 99.5% of our simulations."
#[test]
fn claim_ic3_reaches_optimal_almost_always() {
    let runs = run_campaign(&paper_campaign(50, 10_000), |t| {
        SimConfig::interruptible(3, t)
    });
    let frac = fraction_reached(&runs);
    // 50 paper-parameter trees: at paper scale we measure 99.6–100 %.
    assert!(frac >= 0.96, "IC/FB=3 reached only {frac}");
    assert!(runs.iter().all(|r| r.max_buffers <= 3));
}

/// §4.2.1: "The lowest interruptible performer has one fixed buffer,
/// reaching the optimal steady-state rate in just less than 82% of the
/// trees" — i.e. FB=1 clearly trails FB=3 but still covers most trees.
#[test]
fn claim_fb1_trails_but_covers_most_trees() {
    let fb1 = fraction_reached(&run_campaign(&paper_campaign(50, 10_000), |t| {
        SimConfig::interruptible(1, t)
    }));
    let fb3 = fraction_reached(&run_campaign(&paper_campaign(50, 10_000), |t| {
        SimConfig::interruptible(3, t)
    }));
    assert!(fb1 >= 0.6, "FB=1 reached only {fb1}");
    assert!(fb1 < fb3, "FB=1 ({fb1}) should trail FB=3 ({fb3})");
}

/// §4.2.1: "Non-interruptible communication, starting with one initial
/// buffer, reached the optimal rate in only 20.18% of the trees" — the
/// clear loser among all variants.
#[test]
fn claim_nonic_is_the_clear_loser() {
    let campaign = paper_campaign(50, 10_000);
    let nonic = fraction_reached(&run_campaign(&campaign, |t| {
        SimConfig::non_interruptible(1, t)
    }));
    let ic1 = fraction_reached(&run_campaign(&campaign, |t| SimConfig::interruptible(1, t)));
    assert!(
        nonic < ic1,
        "non-IC ({nonic}) must trail even IC/FB=1 ({ic1})"
    );
}

/// §3.1: "with non-interruptible communication, a bandwidth-centric
/// protocol using a fixed number of buffers will not reach optimal
/// steady-state throughput in all trees" — constructive witness from
/// Fig 2(b). (The paper counts the task on the processor among B's
/// "buffered tasks"; in our accounting the computing task holds no
/// buffer, so the fig2b(k) tree defeats k−1 fixed buffers.)
#[test]
fn claim_no_fixed_buffer_count_suffices_under_nonic() {
    use bandwidth_centric::platform::examples::fig2b_tree;
    let k = 3u64;
    let tree = fig2b_tree(k, 5);
    let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();
    let run = Simulation::new(
        tree,
        SimConfig::non_interruptible_fixed(k as u32 - 1, 1_000),
    )
    .run();
    let t = &run.completion_times;
    let (lo, hi) = (t.len() / 5, t.len() * 4 / 5);
    let rate = (hi - lo) as f64 / (t[hi] - t[lo]) as f64;
    assert!(
        rate < 0.99 * optimal,
        "k buffers should be insufficient: rate {rate} vs optimal {optimal}"
    );
}

/// §2.2: "The number of buffers can be bounded by the least common
/// multiple of all the node and edge weights of the entire tree.
/// However, this bound is very large in practice" — while IC needs 3.
#[test]
fn claim_lcm_bound_is_prohibitive() {
    let tree = RandomTreeConfig::default().generate(2003);
    let bound = period_bound(&tree);
    assert!(
        bound.bit_len() > 64,
        "LCM bound should be astronomically large, got {} bits",
        bound.bit_len()
    );
    let run = Simulation::new(tree, SimConfig::interruptible(3, 500)).run();
    assert!(run.max_buffers() <= 3);
}

/// §2.1 (Theorem 1): children with slower communication "will either
/// partially or totally starve, independent of their execution speeds."
#[test]
fn claim_starvation_is_independent_of_execution_speed() {
    // The slow-link child has an infinitely attractive processor and
    // still starves.
    let mut tree = Tree::new(1_000_000);
    tree.add_child(NodeId::ROOT, 4, 4); // saturates the link: c/w = 1
    let tempting = tree.add_child(NodeId::ROOT, 9, 1);
    let analysis = SteadyState::analyze(&tree);
    assert!(analysis.node_rate(tempting).is_zero());
    let run = Simulation::new(tree, SimConfig::interruptible(3, 500)).run();
    assert!(run.tasks_per_node[tempting.index()] < 15);
}

/// §4.2.3: "for each change, the protocol performance adapts to closely
/// approximate the optimal steady-state performance."
#[test]
fn claim_adaptation_approximates_each_optimum() {
    let cfg = SimConfig::non_interruptible_fixed(2, 1_000).with_change(PlannedChange {
        after_tasks: 200,
        node: fig1_p1(),
        kind: ChangeKind::CommTime(3),
    });
    let mut changed = fig1_tree();
    changed.set_comm_time(fig1_p1(), 3);
    let new_opt = SteadyState::analyze(&changed).optimal_rate().to_f64();
    let run = Simulation::new(fig1_tree(), cfg).run();
    let t = &run.completion_times;
    let rate = (900 - 600) as f64 / (t[899] - t[599]) as f64;
    assert!(
        (rate - new_opt).abs() / new_opt < 0.05,
        "post-change rate {rate} vs new optimum {new_opt}"
    );
}

/// §3.2: "With interruptible communication the fastest communicating
/// nodes will never have to wait for another task so long as there is a
/// task available for it to receive" — observable as preemptions of
/// slower siblings.
#[test]
fn claim_interruption_protects_the_fastest_child() {
    use bandwidth_centric::platform::examples::fig2a_tree;
    let ic = Simulation::new(fig2a_tree(), SimConfig::interruptible(1, 400)).run();
    assert!(
        ic.preemptions > 50,
        "expected frequent preemptions, saw {}",
        ic.preemptions
    );
    let nonic = Simulation::new(fig2a_tree(), SimConfig::non_interruptible_fixed(1, 400)).run();
    assert_eq!(nonic.preemptions, 0, "non-IC must never preempt");
}

/// §3: "it is very straightforward to add subtrees of nodes below any
/// currently connected node" — the overlay grows mid-run with no global
/// coordination and the rate follows.
#[test]
fn claim_overlay_grows_dynamically() {
    let tree = Tree::new(10);
    let cfg = SimConfig::interruptible(3, 900)
        .with_change(PlannedChange {
            after_tasks: 100,
            node: NodeId::ROOT,
            kind: ChangeKind::Join {
                comm: 1,
                compute: 5,
            },
        })
        .with_change(PlannedChange {
            after_tasks: 200,
            node: NodeId(1),
            kind: ChangeKind::Join {
                comm: 1,
                compute: 5,
            },
        });
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_per_node.len(), 3);
    assert!(run.tasks_per_node[1] > 0 && run.tasks_per_node[2] > 0);
    let t = &run.completion_times;
    let early = 80.0 / t[79] as f64;
    let late = (850.0 - 400.0) / (t[849] - t[399]) as f64;
    assert!(
        late > 2.0 * early,
        "joining two workers should multiply the rate ({early} → {late})"
    );
}
