//! Reproducibility guarantees: the entire stack — generator, simulator,
//! campaign — is a pure function of its seeds.

use bandwidth_centric::engine::VecSink;
use bandwidth_centric::experiments::campaign::{run_campaign, CampaignConfig};
use bandwidth_centric::metrics::OnsetConfig;
use bandwidth_centric::prelude::*;
use bandwidth_centric::simcore::trace;
use rayon::IntoParallelIterator;

#[test]
fn generator_is_seed_deterministic() {
    let cfg = RandomTreeConfig::default();
    for seed in [0u64, 1, u64::MAX] {
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        assert_eq!(
            bandwidth_centric::platform::io::to_json(&a),
            bandwidth_centric::platform::io::to_json(&b)
        );
    }
}

#[test]
fn simulation_traces_are_bit_identical() {
    let tree = RandomTreeConfig::default().generate(42);
    for cfg in [
        SimConfig::interruptible(3, 800),
        SimConfig::non_interruptible(1, 800),
    ] {
        let a = Simulation::new(tree.clone(), cfg.clone()).run();
        let b = Simulation::new(tree.clone(), cfg).run();
        assert_eq!(a.completion_times, b.completion_times);
        assert_eq!(a.tasks_per_node, b.tasks_per_node);
        assert_eq!(a.max_buffers_per_node, b.max_buffers_per_node);
        assert_eq!(a.events_processed, b.events_processed);
    }
}

#[test]
fn campaigns_are_deterministic_under_parallelism() {
    // run_campaign uses rayon; per-index seeding must make the output
    // independent of scheduling.
    let campaign = CampaignConfig {
        trees: 12,
        tasks: 600,
        seed: 99,
        tree_config: RandomTreeConfig {
            min_nodes: 5,
            max_nodes: 40,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 200,
        },
        onset: OnsetConfig {
            window_threshold: 100,
            crossings: 2,
        },
    };
    let a = run_campaign(&campaign, |t| SimConfig::interruptible(2, t));
    let b = run_campaign(&campaign, |t| SimConfig::interruptible(2, t));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.index, y.index);
        assert_eq!(x.onset, y.onset);
        assert_eq!(x.end_time, y.end_time);
        assert_eq!(x.events, y.events);
        assert_eq!(x.optimal_rate, y.optimal_rate);
    }
}

#[test]
fn structured_traces_are_bit_identical_across_thread_counts() {
    // The result-level guarantee above, strengthened to the full event
    // stream: recording a batch of seeded simulations inside worker pools
    // of 1, 2, and 4 threads must produce byte-identical JSONL traces.
    let seeds = [3u64, 17, 42];
    let configs = [
        SimConfig::interruptible(2, 150),
        SimConfig::non_interruptible(1, 150),
    ];
    let cases: Vec<(u64, SimConfig)> = seeds
        .iter()
        .flat_map(|&s| configs.iter().map(move |c| (s, c.clone())))
        .collect();
    let record_all = || -> Vec<String> {
        cases
            .clone()
            .into_par_iter()
            .map(|(seed, cfg)| {
                let tree = RandomTreeConfig {
                    min_nodes: 5,
                    max_nodes: 40,
                    comm_min: 1,
                    comm_max: 10,
                    compute_scale: 200,
                }
                .generate(seed);
                let sim = Simulation::traced(tree, cfg, SimWorkspace::new(), VecSink::new());
                let (_result, _ws, sink) = sim.run_traced();
                trace::to_jsonl(&sink.records)
            })
            .collect()
    };
    let mut baseline: Option<Vec<String>> = None;
    for threads in [1usize, 2, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        let traces = record_all();
        match &baseline {
            None => baseline = Some(traces),
            Some(b) => {
                for (i, (one, many)) in b.iter().zip(&traces).enumerate() {
                    assert_eq!(
                        one, many,
                        "trace of case {i} differs between 1 and {threads} threads"
                    );
                }
            }
        }
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let mk = |seed| CampaignConfig {
        trees: 4,
        tasks: 300,
        seed,
        tree_config: RandomTreeConfig::default(),
        onset: OnsetConfig::default(),
    };
    let a = run_campaign(&mk(1), |t| SimConfig::interruptible(2, t));
    let b = run_campaign(&mk(2), |t| SimConfig::interruptible(2, t));
    assert!(
        a.iter()
            .zip(&b)
            .any(|(x, y)| x.end_time != y.end_time || x.nodes != y.nodes),
        "distinct seeds should yield distinct campaigns"
    );
}
