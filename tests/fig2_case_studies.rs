//! Figure 2's case studies, verified by simulation: the buffer-growth
//! problem that motivates interruptible communication.

use bandwidth_centric::platform::examples::{fig2a_b, fig2a_tree, fig2b_b, fig2b_tree};
use bandwidth_centric::prelude::*;

/// Steady rate over the 20–80% completion quantiles (skips startup and
/// the deliberately slow root's single straggler task).
fn mid_rate(times: &[u64]) -> f64 {
    let (lo, hi) = (times.len() / 5, times.len() * 4 / 5);
    (hi - lo) as f64 / (times[hi] - times[lo]) as f64
}

#[test]
fn fig2a_one_buffer_does_not_suffice_under_nonic() {
    // "B takes 2 time units to compute a task and would need at least 3
    // buffered tasks to maintain its rate while node A is sending to node
    // C for 5 time units."
    let optimal = SteadyState::analyze(&fig2a_tree()).optimal_rate().to_f64();
    let one = Simulation::new(fig2a_tree(), SimConfig::non_interruptible_fixed(1, 800)).run();
    assert!(
        mid_rate(&one.completion_times) < 0.95 * optimal,
        "one fixed buffer should be insufficient under non-IC"
    );

    // With 3 fixed buffers, non-IC sustains the optimum on this tree.
    let three = Simulation::new(fig2a_tree(), SimConfig::non_interruptible_fixed(3, 800)).run();
    assert!(
        mid_rate(&three.completion_times) > 0.97 * optimal,
        "three buffers restore the optimal rate (got {:.4} vs {:.4})",
        mid_rate(&three.completion_times),
        optimal
    );
}

#[test]
fn fig2a_growth_discovers_the_needed_buffers() {
    let run = Simulation::new(fig2a_tree(), SimConfig::non_interruptible(1, 800)).run();
    assert!(
        run.max_buffers_per_node[fig2a_b().index()] >= 3,
        "B must grow to ≥ 3 buffers, grew {}",
        run.max_buffers_per_node[fig2a_b().index()]
    );
}

#[test]
fn fig2b_for_every_k_some_tree_needs_more_than_k_buffers() {
    // The theorem-shaped claim of Fig 2(b), tested constructively: under
    // non-IC with k fixed buffers the rate is sub-optimal, while k+1
    // (k scaled by the tree's construction) recovers it.
    for k in [2u64, 4] {
        let x = 5;
        let tree = fig2b_tree(k, x);
        let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();

        let capped = Simulation::new(
            tree.clone(),
            SimConfig::non_interruptible_fixed(k as u32, 1_000),
        )
        .run();
        let roomy = Simulation::new(
            tree,
            SimConfig::non_interruptible_fixed(k as u32 + 1, 1_000),
        )
        .run();
        let capped_rate = mid_rate(&capped.completion_times);
        let roomy_rate = mid_rate(&roomy.completion_times);
        assert!(
            capped_rate < 0.99 * optimal,
            "k={k}: {k} buffers should starve B (rate {capped_rate:.4} vs {optimal:.4})"
        );
        assert!(
            roomy_rate > capped_rate,
            "k={k}: one more buffer must help ({roomy_rate:.4} vs {capped_rate:.4})"
        );
    }
}

#[test]
fn fig2b_growth_tracks_k() {
    for k in [2u64, 5] {
        let run = Simulation::new(fig2b_tree(k, 5), SimConfig::non_interruptible(1, 1_500)).run();
        let b = run.max_buffers_per_node[fig2b_b().index()] as u64;
        assert!(b >= k, "k={k}: B grew only {b} buffers");
    }
}

#[test]
fn interruptible_voids_the_case_studies() {
    // §3.2: "A high priority node like node B in Figure 2(a) will not
    // need to stockpile tasks... interruptible communications alleviate
    // the undesirable characteristics found in Section 3.1."
    let optimal = SteadyState::analyze(&fig2a_tree()).optimal_rate().to_f64();
    let ic = Simulation::new(fig2a_tree(), SimConfig::interruptible(1, 800)).run();
    assert!(
        mid_rate(&ic.completion_times) > 0.97 * optimal,
        "IC with a single buffer should reach the optimum on Fig 2(a)"
    );

    for k in [2u64, 5] {
        let tree = fig2b_tree(k, 5);
        let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();
        let ic = Simulation::new(tree, SimConfig::interruptible(2, 1_000)).run();
        assert!(
            mid_rate(&ic.completion_times) > 0.95 * optimal,
            "k={k}: IC/FB=2 should void the k-buffer requirement"
        );
    }
}
