//! Dynamic overlay reconfiguration (the §3 scalability/adaptivity claims
//! and the §6 "dynamically evolving pools of resources" future work):
//! nodes join and leave mid-run; the protocol stays live, conserves
//! tasks, and tracks the changing optimum.

use bandwidth_centric::prelude::*;
use proptest::prelude::*;

fn join(after_tasks: u64, parent: NodeId, comm: u64, compute: u64) -> PlannedChange {
    PlannedChange {
        after_tasks,
        node: parent,
        kind: ChangeKind::Join { comm, compute },
    }
}

fn leave(after_tasks: u64, node: NodeId) -> PlannedChange {
    PlannedChange {
        after_tasks,
        node,
        kind: ChangeKind::Leave,
    }
}

fn phase_rate(times: &[u64], from: usize, to: usize) -> f64 {
    (to - from) as f64 / (times[to - 1] - times[from - 1]) as f64
}

#[test]
fn joining_a_fast_worker_raises_the_rate() {
    // A lone repository (w=10) completes 1 task per 10 steps. A fast
    // worker (c=1, w=2) joins after 100 tasks; the rate must climb
    // toward the new optimum.
    let tree = Tree::new(10);
    let mut expected = Tree::new(10);
    expected.add_child(NodeId::ROOT, 1, 2);
    let after_opt = SteadyState::analyze(&expected).optimal_rate().to_f64();

    let cfg = SimConfig::interruptible(3, 1_200).with_change(join(100, NodeId::ROOT, 1, 2));
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), 1_200);

    let before = phase_rate(&run.completion_times, 20, 90);
    let after = phase_rate(&run.completion_times, 600, 1_150);
    assert!((before - 0.1).abs() < 0.01, "pre-join rate {before}");
    assert!(
        (after - after_opt).abs() / after_opt < 0.05,
        "post-join rate {after} vs optimum {after_opt}"
    );
    // The joined node exists and did most of the work.
    assert_eq!(run.tasks_per_node.len(), 2);
    assert!(run.tasks_per_node[1] > run.tasks_per_node[0]);
}

#[test]
fn join_targets_a_previously_joined_node() {
    // Chain growth: node 1 joins under the root, node 2 joins under
    // node 1 (its id is deterministic: the next arena index).
    let tree = Tree::new(4);
    let cfg = SimConfig::interruptible(2, 800)
        .with_change(join(50, NodeId::ROOT, 1, 4))
        .with_change(join(100, NodeId(1), 1, 4));
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_per_node.len(), 3);
    assert!(run.tasks_per_node[2] > 0, "grandchild never computed");
}

#[test]
fn leaving_worker_returns_its_tasks() {
    // Two workers; the faster-link one departs mid-run. All tasks still
    // complete (the repository re-dispenses reclaimed ones).
    let mut tree = Tree::new(50);
    let fast = tree.add_child(NodeId::ROOT, 1, 3);
    let _slow = tree.add_child(NodeId::ROOT, 2, 5);
    let cfg = SimConfig::interruptible(3, 1_000).with_change(leave(300, fast));
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), 1_000);
    assert_eq!(run.tasks_per_node.iter().sum::<u64>(), 1_000);
    // After departure the remaining platform's rate applies.
    let mut remaining = Tree::new(50);
    remaining.add_child(NodeId::ROOT, 2, 5);
    let opt = SteadyState::analyze(&remaining).optimal_rate().to_f64();
    let tail = phase_rate(&run.completion_times, 700, 980);
    assert!(
        (tail - opt).abs() / opt < 0.08,
        "tail rate {tail} vs post-leave optimum {opt}"
    );
}

#[test]
fn subtree_leave_reclaims_deep_tasks() {
    // A deep, well-buffered subtree departs while full of tasks.
    let mut tree = Tree::new(1_000);
    let mid = tree.add_child(NodeId::ROOT, 1, 1_000);
    let deep = tree.add_child(mid, 1, 4);
    let _leaf = tree.add_child(deep, 1, 4);
    let _other = tree.add_child(NodeId::ROOT, 3, 6);
    let cfg = SimConfig::interruptible(3, 600).with_change(leave(150, mid));
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), 600);
    assert_eq!(run.tasks_per_node.iter().sum::<u64>(), 600);
}

#[test]
fn leave_then_rejoin_pattern() {
    // Volunteer churn: the worker leaves, a replacement joins later.
    let mut tree = Tree::new(20);
    let w = tree.add_child(NodeId::ROOT, 1, 2);
    let cfg = SimConfig::interruptible(2, 900)
        .with_change(leave(200, w))
        .with_change(join(400, NodeId::ROOT, 1, 2));
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), 900);
    // The replacement (arena index 2) picked up the load.
    assert!(run.tasks_per_node[2] > 100);
    // The departed node computed nothing after task ~200.
    assert!(run.tasks_per_node[1] < 450);
}

#[test]
fn non_interruptible_supports_topology_changes_too() {
    let mut tree = Tree::new(30);
    let a = tree.add_child(NodeId::ROOT, 2, 4);
    let cfg = SimConfig::non_interruptible(1, 700)
        .with_change(join(100, NodeId::ROOT, 1, 3))
        .with_change(leave(300, a));
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), 700);
    assert_eq!(run.tasks_per_node.iter().sum::<u64>(), 700);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random join/leave storms: liveness and conservation always hold.
    #[test]
    fn churn_with_topology_changes_stays_live(
        seed in 0u64..2_000,
        events in prop::collection::vec((10u64..500, any::<bool>(), 1u64..20, 1u64..50), 1..8),
        interruptible in any::<bool>(),
    ) {
        let tree = RandomTreeConfig {
            min_nodes: 3,
            max_nodes: 20,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 60,
        }
        .generate(seed);
        let base_len = tree.len() as u32;
        let tasks = 600;
        let mut cfg = if interruptible {
            SimConfig::interruptible(2, tasks)
        } else {
            SimConfig::non_interruptible(1, tasks)
        };
        let mut next_join_id = base_len;
        for (at, is_join, comm, compute) in events {
            if is_join {
                // Join under a node guaranteed present from the start.
                cfg = cfg.with_change(join(at, NodeId(at as u32 % base_len), comm, compute));
                next_join_id += 1;
            } else if base_len > 1 {
                // Leave a non-root original node (may already be gone —
                // idempotent).
                let victim = 1 + (at as u32 % (base_len - 1));
                cfg = cfg.with_change(leave(at, NodeId(victim)));
            }
        }
        let _ = next_join_id;
        let run = Simulation::new(tree, cfg).run();
        prop_assert_eq!(run.tasks_completed(), tasks);
        prop_assert_eq!(run.tasks_per_node.iter().sum::<u64>(), tasks);
        prop_assert!(run.completion_times.windows(2).all(|w| w[0] <= w[1]));
    }
}
