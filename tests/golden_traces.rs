//! Golden-trace snapshot tests: the full event stream of every canonical
//! scenario (Fig 1(b) tree and the first Table 1 campaign trees × the
//! non-IC and IC/FB∈{1,2,3} protocol variants) must match the committed
//! JSONL files in `tests/golden/` **byte for byte** — and stay identical
//! when the recordings run inside worker pools of 1, 2, and 4 threads.
//!
//! This extends DESIGN.md invariant 7 ("identical seeds ⇒ identical
//! traces") from aggregate results down to complete temporal behavior:
//! any change to scheduling order, tie-breaking, buffer-growth timing, or
//! event ordering fails here with a one-line diff.
//!
//! After an *intentional* behavior change, regenerate with
//!
//! ```text
//! BLESS=1 cargo test --test golden_traces
//! ```
//!
//! and review the resulting diff like source (see CONTRIBUTING.md). On
//! mismatch the actual traces are also written to
//! `$TMPDIR/trace-failures/` so CI can upload them as artifacts.

use bandwidth_centric::experiments::goldens::{golden_scenarios, record_trace};
use bandwidth_centric::simcore::trace;
use rayon::IntoParallelIterator;
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn failure_dir() -> PathBuf {
    std::env::temp_dir().join("trace-failures")
}

fn bless_requested() -> bool {
    std::env::var("BLESS").map(|v| v == "1").unwrap_or(false)
}

/// Saves a mismatching actual trace where CI's artifact step picks it up.
fn stash_failure(name: &str, actual: &str) -> PathBuf {
    let dir = failure_dir();
    fs::create_dir_all(&dir).expect("create failure dir");
    let path = dir.join(format!("{name}.jsonl"));
    fs::write(&path, actual).expect("write failure artifact");
    path
}

#[test]
fn golden_traces_match_byte_exactly() {
    let bless = bless_requested();
    if bless {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
    }
    for (name, tree, cfg) in golden_scenarios() {
        let actual = trace::to_jsonl(&record_trace(&tree, &cfg));
        let path = golden_dir().join(format!("{name}.jsonl"));
        if bless {
            fs::write(&path, &actual).expect("bless golden trace");
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {} ({e}); generate with BLESS=1 cargo test --test golden_traces",
                path.display()
            )
        });
        if expected != actual {
            let stashed = stash_failure(&name, &actual);
            let first = expected
                .lines()
                .zip(actual.lines())
                .position(|(e, a)| e != a)
                .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
            let render = |text: &str| {
                text.lines()
                    .nth(first)
                    .unwrap_or("<end of trace>")
                    .to_string()
            };
            panic!(
                "golden trace {name} diverged at line {} of {}:\n  expected: {}\n  actual:   {}\n\
                 full actual trace written to {}\n\
                 if the behavior change is intentional, re-bless with \
                 BLESS=1 cargo test --test golden_traces and review the diff",
                first + 1,
                path.display(),
                render(&expected),
                render(&actual),
                stashed.display(),
            );
        }
    }
}

/// Simulations record their trace single-threaded, but campaigns run many
/// of them inside a worker pool — the stream must not depend on which
/// worker runs a scenario or how many exist. Replays the whole golden set
/// under pools of 1, 2, and 4 threads and demands bit-identical bytes
/// (and agreement with the committed files, when present).
#[test]
fn golden_traces_are_bit_identical_at_1_2_4_threads() {
    let scenarios = golden_scenarios();
    let mut baseline: Option<Vec<String>> = None;
    for threads in [1usize, 2, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        let traces: Vec<String> = scenarios
            .clone()
            .into_par_iter()
            .map(|(_, tree, cfg)| trace::to_jsonl(&record_trace(&tree, &cfg)))
            .collect();
        match &baseline {
            None => baseline = Some(traces),
            Some(b) => {
                for (i, (one, many)) in b.iter().zip(&traces).enumerate() {
                    assert_eq!(
                        one, many,
                        "trace of {} differs between 1 and {threads} worker threads",
                        scenarios[i].0
                    );
                }
            }
        }
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
    // The thread-swept traces must also be the committed ones (skipped
    // only while bootstrapping a fresh golden set under BLESS).
    for ((name, _, _), text) in scenarios.iter().zip(baseline.expect("three sweeps ran")) {
        let path = golden_dir().join(format!("{name}.jsonl"));
        if let Ok(expected) = fs::read_to_string(&path) {
            if expected != text {
                let stashed = stash_failure(name, &text);
                panic!(
                    "thread-swept trace of {name} does not match the committed golden \
                     {} (actual written to {})",
                    path.display(),
                    stashed.display()
                );
            }
        } else {
            assert!(
                bless_requested(),
                "missing golden trace {}; generate with BLESS=1 cargo test --test golden_traces",
                path.display()
            );
        }
    }
}
