//! Trace-vs-result reconciliation on random trees.
//!
//! The structured trace and the engine's `RunResult` counters are
//! produced by independent code paths: the trace is emitted at each
//! instrumentation site, the result counters are accumulated by the
//! scheduler itself, and `bc_metrics::fold_timelines` reduces the former
//! without ever seeing the latter. Property-testing their *exact*
//! agreement on random platforms — per-node task counts, busy spans equal
//! to `w · tasks` to the timestep, preemption/transfer/request totals,
//! and a buffer-occupancy replay that must never exceed the configured
//! FB policy — is evidence that both accountings are right.

use bandwidth_centric::core::BufferPolicy;
use bandwidth_centric::engine::{SimWorkspace, Simulation, VecSink};
use bandwidth_centric::metrics::{fold_timelines, trace_end_time, NodeTimeline};
use bandwidth_centric::prelude::*;
use bandwidth_centric::simcore::trace::{TraceEvent, TraceRecord};
use proptest::prelude::*;

const TASKS: u64 = 120;

fn tree_config() -> RandomTreeConfig {
    RandomTreeConfig {
        min_nodes: 4,
        max_nodes: 40,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 50,
    }
}

fn variant(index: usize) -> SimConfig {
    match index {
        0 => SimConfig::non_interruptible(1, TASKS),
        1 => SimConfig::interruptible(1, TASKS),
        2 => SimConfig::interruptible(2, TASKS),
        _ => SimConfig::interruptible(3, TASKS),
    }
}

/// Replays buffer acquire/release events per node, checking that the
/// `held` fields form a consistent ±1 walk that stays within the policy.
fn replay_occupancy(records: &[TraceRecord], policy: &BufferPolicy, nodes: usize) {
    let mut held = vec![0u32; nodes];
    for r in records {
        match r.event {
            TraceEvent::BufferAcquire {
                node,
                held: h,
                capacity,
            } => {
                let i = node as usize;
                held[i] += 1;
                assert_eq!(
                    held[i], h,
                    "acquire at t={} on node {i} skipped a step",
                    r.time
                );
                assert!(
                    h <= capacity,
                    "node {i} held {h} of {capacity} at t={}",
                    r.time
                );
                if let BufferPolicy::Fixed(fb) = policy {
                    assert_eq!(capacity, *fb, "fixed-buffer capacity drifted on node {i}");
                    assert!(h <= *fb, "node {i} exceeded FB={fb} at t={}", r.time);
                }
            }
            TraceEvent::BufferRelease { node, held: h, .. } => {
                let i = node as usize;
                assert!(
                    held[i] > 0,
                    "release below zero on node {i} at t={}",
                    r.time
                );
                held[i] -= 1;
                assert_eq!(
                    held[i], h,
                    "release at t={} on node {i} skipped a step",
                    r.time
                );
            }
            _ => {}
        }
    }
    assert!(
        held.iter().all(|&h| h == 0),
        "all delivered tasks must be consumed by the end of a finished run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_reconciles_with_run_result(seed in 0u64..10_000, variant_idx in 0usize..4) {
        let tree = tree_config().generate(seed);
        let cfg = variant(variant_idx);
        let sim = Simulation::traced(tree.clone(), cfg.clone(), SimWorkspace::new(), VecSink::new());
        let (result, _ws, sink) = sim.run_traced();
        let records = sink.records;

        prop_assert_eq!(result.tasks_completed(), TASKS);
        prop_assert_eq!(trace_end_time(&records), result.end_time);

        let timelines = fold_timelines(&records);
        prop_assert!(timelines.len() <= tree.len());
        let timeline = |i: usize| timelines.get(i).cloned().unwrap_or_default();

        // Compute accounting: the compute-finish count per node matches the
        // engine's tally, and the summed busy spans equal w · tasks exactly
        // (closed spans only — a finished run leaves nothing open).
        let mut finishes = 0u64;
        for (i, id) in tree.ids().enumerate() {
            let tl = timeline(i);
            prop_assert_eq!(tl.open_spans, 0, "finished run left spans open on node {}", i);
            prop_assert_eq!(tl.tasks_computed, result.tasks_per_node[i]);
            let expected_busy =
                u128::from(tree.compute_time(id)) * u128::from(result.tasks_per_node[i]);
            prop_assert_eq!(u128::from(tl.busy_compute), expected_busy,
                "busy compute of node {} is not w * tasks", i);
            prop_assert_eq!(tl.busy_compute, result.busy_compute_per_node[i]);
            prop_assert_eq!(tl.busy_link, result.busy_link_per_node[i]);
            prop_assert_eq!(tl.preemptions, result.preemptions_per_node[i]);
            prop_assert_eq!(tl.buffer_high_water, result.peak_held_per_node[i]);
            if tl.tasks_received > 0 {
                // Buffer events sample capacity at acquire/release time;
                // growable pools can also grow on send/compute completion
                // (§3.1 rules 2–3) with no adjacent buffer event, so the
                // sampled maximum is exact only for a fixed policy and a
                // lower bound otherwise.
                match cfg.buffers {
                    BufferPolicy::Fixed(_) => {
                        prop_assert_eq!(tl.max_capacity, result.max_buffers_per_node[i])
                    }
                    _ => prop_assert!(tl.max_capacity <= result.max_buffers_per_node[i]),
                }
            }
            prop_assert_eq!(tl.requests_denied, 0, "no churn, so no denied requests");
            finishes += tl.tasks_computed;
        }
        prop_assert_eq!(finishes, TASKS, "compute-finish count != tasks completed");

        // Global counters reconcile with per-node sums from the trace.
        let sum = |f: fn(&NodeTimeline) -> u64| timelines.iter().map(f).sum::<u64>();
        prop_assert_eq!(sum(|t| t.transfers_started), result.transfers_started);
        prop_assert_eq!(sum(|t| t.preemptions), result.preemptions);
        prop_assert_eq!(sum(|t| t.requests_sent), result.requests_sent);
        prop_assert!(sum(|t| t.resumes) <= result.preemptions,
            "a transfer can only resume after being preempted");
        // Every transfer that completed delivered exactly one task.
        prop_assert_eq!(sum(|t| t.transfers_completed), sum(|t| t.tasks_received));

        // Buffer occupancy replayed from the event stream stays within the
        // configured policy and never goes negative.
        replay_occupancy(&records, &cfg.buffers, tree.len());
    }
}
