//! End-to-end integration: platform → theory → simulation → metrics, all
//! through the public facade API.

use bandwidth_centric::metrics::{ascii_table, csv};
use bandwidth_centric::platform::io;
use bandwidth_centric::prelude::*;

#[test]
fn full_pipeline_on_random_platform() {
    // Generate, validate, serialize, reload.
    let tree = RandomTreeConfig::default().generate(123);
    let json = io::to_json(&tree);
    let tree = io::from_json(&json).expect("round trip");

    // Theory.
    let analysis = SteadyState::analyze(&tree);
    let optimal = analysis.optimal_rate();
    assert!(optimal.is_positive());

    // Simulation under the paper's recommended protocol.
    let tasks = 4_000;
    let run = Simulation::new(tree.clone(), SimConfig::interruptible(3, tasks)).run();
    assert_eq!(run.tasks_completed(), tasks);
    assert!(run.max_buffers() <= 3);

    // Metrics: windows exist and the normalized curve is sane.
    let curve = normalized_curve(&run.completion_times, &optimal);
    assert_eq!(curve.len() as u64, tasks / 2);
    let tail_mean: f64 = curve[curve.len() - 100..]
        .iter()
        .map(|&(_, v)| v)
        .sum::<f64>()
        / 100.0;
    assert!(
        tail_mean > 0.5 && tail_mean < 1.5,
        "tail of normalized curve at {tail_mean}"
    );

    // Used nodes form a meaningful subtree.
    let used = run.used_nodes();
    let stats = tree.used_subtree_stats(&used);
    assert!(stats.size >= 1 && stats.size <= tree.len());
}

#[test]
fn simulated_rate_never_beats_theory() {
    // The steady measured rate can wiggle above optimal within a window,
    // but the whole-run mean rate (excluding startup) must not exceed the
    // optimum meaningfully.
    for seed in [1u64, 7, 31] {
        let tree = RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 80,
            comm_min: 1,
            comm_max: 30,
            compute_scale: 500,
        }
        .generate(seed);
        let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();
        let run = Simulation::new(tree, SimConfig::interruptible(3, 3_000)).run();
        let n = run.completion_times.len();
        let mid = (n / 10, n - 1);
        let rate = (mid.1 - mid.0) as f64
            / (run.completion_times[mid.1] - run.completion_times[mid.0]) as f64;
        assert!(
            rate <= optimal * 1.02,
            "seed {seed}: measured {rate} exceeds optimal {optimal}"
        );
    }
}

#[test]
fn lp_theorem_and_simulation_triangle() {
    // Three independent implementations must tell one story: the LP
    // optimum equals the Theorem 1 recursion, and the protocol attains it.
    let mut tree = Tree::new(4);
    let a = tree.add_child(NodeId::ROOT, 1, 3);
    tree.add_child(a, 2, 5);
    tree.add_child(NodeId::ROOT, 2, 4);

    let theorem = SteadyState::analyze(&tree).optimal_rate();
    let lp = lp_optimal_rate(&tree);
    assert_eq!(theorem, lp);

    let run = Simulation::new(tree, SimConfig::interruptible(3, 4_000)).run();
    let onset = detect_onset(&run.completion_times, &theorem, OnsetConfig::default());
    assert!(onset.is_some(), "protocol failed to attain the optimum");
}

#[test]
fn report_rendering_helpers_work_end_to_end() {
    let rows = vec![vec!["IC, FB=3".to_string(), "99.5%".to_string()]];
    let table = ascii_table(&["variant", "reached"], &rows);
    assert!(table.contains("IC, FB=3"));
    let csv_text = csv(&["variant", "reached"], &rows);
    assert!(csv_text.starts_with("variant,reached\n"));
}

#[test]
fn period_bound_motivates_the_protocols() {
    // The paper's argument in one assertion: the schedule-period bound is
    // astronomically larger than the 3 buffers IC needs.
    let tree = RandomTreeConfig::default().generate(5);
    let bound = period_bound(&tree);
    assert!(bound.bit_len() > 32);
    let run = Simulation::new(tree, SimConfig::interruptible(3, 500)).run();
    assert!(run.max_buffers() <= 3);
}
