//! Failure injection / platform churn: storms of weight changes mid-run.
//! The protocol must stay live (every task completes), conserve tasks,
//! and re-converge to the final platform's optimum.

use bandwidth_centric::prelude::*;
use proptest::prelude::*;

fn churn_changes(tree: &Tree, total_tasks: u64, specs: &[(u64, u8, u64)]) -> Vec<PlannedChange> {
    // specs: (after_tasks_fraction ‰, node selector, new weight 1..=200)
    specs
        .iter()
        .map(|&(frac, which, weight)| {
            let after_tasks = (total_tasks * (frac % 1000) / 1000).max(1);
            // Pick a non-root node deterministically.
            let idx = 1 + (which as usize % (tree.len() - 1));
            let node = NodeId(idx as u32);
            let kind = if weight % 2 == 0 {
                ChangeKind::CommTime(weight.clamp(1, 200))
            } else {
                ChangeKind::ComputeTime(weight.clamp(1, 200))
            };
            PlannedChange {
                after_tasks,
                node,
                kind,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary change storms never deadlock or lose tasks, under either
    /// protocol.
    #[test]
    fn change_storms_stay_live(
        seed in 0u64..3_000,
        specs in prop::collection::vec((0u64..1000, any::<u8>(), 1u64..200), 1..12),
        interruptible in any::<bool>(),
    ) {
        let tree = RandomTreeConfig {
            min_nodes: 4,
            max_nodes: 40,
            comm_min: 1,
            comm_max: 20,
            compute_scale: 150,
        }
        .generate(seed);
        let tasks = 600;
        let mut cfg = if interruptible {
            SimConfig::interruptible(2, tasks)
        } else {
            SimConfig::non_interruptible(1, tasks)
        };
        for ch in churn_changes(&tree, tasks, &specs) {
            cfg = cfg.with_change(ch);
        }
        let run = Simulation::new(tree, cfg).run();
        prop_assert_eq!(run.tasks_completed(), tasks);
        prop_assert_eq!(run.tasks_per_node.iter().sum::<u64>(), tasks);
        prop_assert!(run.completion_times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// After the last change, the protocol converges to the *final*
    /// platform's optimal rate (single early change, long tail).
    #[test]
    fn reconverges_to_final_platform(seed in 0u64..2_000, new_c in 1u64..30) {
        let tree = RandomTreeConfig {
            min_nodes: 4,
            max_nodes: 25,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 100,
        }
        .generate(seed);
        let tasks = 3_000u64;
        let node = NodeId(1);
        let cfg = SimConfig::interruptible(3, tasks).with_change(PlannedChange {
            after_tasks: 200,
            node,
            kind: ChangeKind::CommTime(new_c),
        });
        let mut final_tree = tree.clone();
        final_tree.set_comm_time(node, new_c);
        let final_opt = SteadyState::analyze(&final_tree).optimal_rate().to_f64();

        let run = Simulation::new(tree, cfg).run();
        // Measured rate over the last third (well past the change).
        let n = run.completion_times.len();
        let (lo, hi) = (n * 2 / 3, n - 1);
        let span = (run.completion_times[hi] - run.completion_times[lo]).max(1);
        let measured = (hi - lo) as f64 / span as f64;
        prop_assert!(
            measured <= final_opt * 1.05,
            "seed {}: measured {} above final optimum {}", seed, measured, final_opt
        );
        prop_assert!(
            measured >= final_opt * 0.75,
            "seed {}: measured {} far below final optimum {}", seed, measured, final_opt
        );
    }
}

#[test]
fn oscillating_link_is_survivable() {
    // A link that flips every 50 tasks between fast and slow.
    let tree = RandomTreeConfig {
        min_nodes: 6,
        max_nodes: 20,
        comm_min: 1,
        comm_max: 5,
        compute_scale: 60,
    }
    .generate(17);
    let tasks = 1_000u64;
    let mut cfg = SimConfig::interruptible(2, tasks);
    for k in 1..18 {
        cfg = cfg.with_change(PlannedChange {
            after_tasks: k * 50,
            node: NodeId(1),
            kind: ChangeKind::CommTime(if k % 2 == 0 { 2 } else { 40 }),
        });
    }
    let run = Simulation::new(tree, cfg).run();
    assert_eq!(run.tasks_completed(), tasks);
}
