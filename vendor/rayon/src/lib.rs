//! Offline shim of the `rayon` API surface used by this workspace.
//!
//! The workspace only uses the `into_par_iter().map(..).collect()`
//! pipeline (campaign fan-out over independent simulations). This shim
//! keeps that API but executes on scoped `std::thread`s: the input is
//! split into contiguous chunks, one per available core, each chunk is
//! mapped on its own thread, and the per-chunk outputs are concatenated —
//! preserving input order exactly like rayon's indexed collect.

use std::num::NonZeroUsize;

/// Entry point trait, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference entry point, mirroring
/// `rayon::iter::IntoParallelRefIterator` (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    /// Parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator (items are split across threads when
/// a consuming operation runs).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator; execution happens at `collect`.
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps every item; the closure runs on worker threads at collect
    /// time, so it must be `Sync` (shared) and side-effect free like any
    /// rayon closure.
    pub fn map<R, F>(self, f: F) -> MapParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapParIter<T, F> {
    /// Runs the map in parallel and gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_parallel_map(self.items, &self.f).into_iter().collect()
    }
}

fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

fn run_parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    // Split back-to-front so each split is O(chunk).
    while items.len() > chunk {
        let tail = items.split_off(items.len() - chunk);
        chunks.push(tail);
    }
    chunks.push(items);
    chunks.reverse();

    let mut outputs: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            outputs.push(h.join().expect("parallel map worker panicked"));
        }
    });
    outputs.into_iter().flatten().collect()
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_vec_input() {
        let v = vec!["a", "bb", "ccc"];
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn par_iter_borrows_in_order() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, v.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_closures_from_multiple_threads_or_one() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        assert!(!seen.lock().unwrap().is_empty());
    }
}
