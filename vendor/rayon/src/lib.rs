//! Offline shim of the `rayon` API surface used by this workspace.
//!
//! The workspace uses the `into_par_iter().map(..).collect()` pipeline
//! (campaign fan-out over independent simulations) plus `map_init` for
//! per-worker reusable state. This shim keeps those APIs but executes on
//! scoped `std::thread`s with **dynamic work distribution**: workers pull
//! guided-size chunks of indices from a shared atomic counter, so a few
//! straggler items (heterogeneous tree sizes) no longer serialize the
//! tail the way static one-chunk-per-core splitting did. Results are
//! written into their input positions, preserving input order exactly
//! like rayon's indexed collect.
//!
//! Scaling notes (see DESIGN.md "Parallel scaling & streaming
//! campaigns"): the claim counter is cache-line-padded ([`CachePadded`])
//! so claims never false-share with the queue's read-only fields, the
//! chunk grain self-tunes from the queue shape (guided decay toward a
//! per-queue minimum grain, [`WorkQueue::new`]), and `map_init` state is
//! **thread-affine by construction** — each worker builds its state once
//! per parallel call and every chunk it claims runs against that same
//! state, so a reused `SimWorkspace`'s arenas stay in that worker's
//! cache for the whole campaign (state never migrates between workers).
//!
//! Thread count resolution (first match wins):
//! 1. [`ThreadPoolBuilder::build_global`] override (settable repeatedly,
//!    unlike real rayon — the thread-scaling benches sweep it),
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Thread-count control
// ---------------------------------------------------------------------------

/// Global worker-count override; 0 = unset (env var / hardware decide).
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Mirrors `rayon::ThreadPoolBuilder` far enough to set the global worker
/// count. Unlike real rayon, `build_global` may be called repeatedly; the
/// latest call wins (workers are spawned per parallel call, not pooled).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with no explicit thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Never fails in this shim.
    pub fn build_global(self) -> Result<(), &'static str> {
        NUM_THREADS_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The number of worker threads parallel calls will use.
pub fn current_num_threads() -> usize {
    let explicit = NUM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// An indexed source of `len` items, each extractable exactly once by
/// position from any worker thread.
///
/// # Safety
/// Implementations must hand out each index's item at most once across
/// the whole run (`take(i)` may move the item out of shared storage).
/// Callers uphold that by claiming disjoint index ranges, and must call
/// [`IndexedSource::begin_consume`] before the first `take` so the
/// source's destructor stops owning the items.
pub unsafe trait IndexedSource: Sync {
    /// The produced item type.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// True when the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Transfers item ownership to the consumer: after this, dropping the
    /// source frees backing storage but no items (taken ones now live in
    /// the consumer; a panic merely leaks the untaken remainder).
    fn begin_consume(&self) {}
    /// Extracts item `i`.
    ///
    /// # Safety
    /// [`IndexedSource::begin_consume`] was called, each `i < len()` is
    /// taken at most once, and `i` is in bounds.
    unsafe fn take(&self, i: usize) -> Self::Item;
}

/// Owned `Vec` source: items are moved out by raw pointer reads.
pub struct VecSource<T> {
    buf: ManuallyDrop<Vec<T>>,
    consuming: std::sync::atomic::AtomicBool,
}

// SAFETY: workers never share references to individual items — each item
// is *moved* out exactly once (disjoint indices) — so `T: Send` suffices,
// matching rayon's own bound for owned iteration.
unsafe impl<T: Send> Sync for VecSource<T> {}

// SAFETY: items are only moved out under the disjoint-index contract.
unsafe impl<T: Send> IndexedSource for VecSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.buf.len()
    }
    fn begin_consume(&self) {
        self.consuming.store(true, Ordering::Relaxed);
    }
    unsafe fn take(&self, i: usize) -> T {
        debug_assert!(i < self.buf.len());
        std::ptr::read(self.buf.as_ptr().add(i))
    }
}

/// Integer-range source: indices map to values arithmetically, so the
/// range is never materialized (the 25k-scale fan-out used to allocate
/// the whole index `Vec` up front).
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

macro_rules! range_source {
    ($t:ty) => {
        // SAFETY: take() is pure arithmetic; nothing is moved out.
        unsafe impl IndexedSource for RangeSource<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            unsafe fn take(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Source = RangeSource<$t>;
            fn into_par_iter(self) -> ParIter<RangeSource<$t>> {
                let len = usize::try_from(self.end.saturating_sub(self.start))
                    .expect("range too long for a parallel iterator");
                ParIter {
                    source: RangeSource {
                        start: self.start,
                        len,
                    },
                }
            }
        }
    };
}

range_source!(usize);
range_source!(u64);

/// Borrowed-slice source: items are references, taken by index.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

// SAFETY: shared references are Copy; no move-out occurs.
unsafe impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn take(&self, i: usize) -> &'a T {
        debug_assert!(i < self.slice.len());
        self.slice.get_unchecked(i)
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Entry point trait, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item produced by the parallel iterator.
    type Item: Send;
    /// Backing indexed source.
    type Source: IndexedSource<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;
    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter {
            source: VecSource {
                buf: ManuallyDrop::new(self),
                consuming: std::sync::atomic::AtomicBool::new(false),
            },
        }
    }
}

impl<T> Drop for VecSource<T> {
    fn drop(&mut self) {
        // Before consumption starts the source still owns every item:
        // drop the Vec normally. Once `begin_consume` ran, taken items
        // live (or died) in the consumer, so only the backing buffer may
        // be freed; untaken items (panic path) are leaked, never
        // double-dropped.
        unsafe {
            let mut v = ManuallyDrop::take(&mut self.buf);
            if self.consuming.load(Ordering::Relaxed) {
                v.set_len(0);
            }
            drop(v);
        }
    }
}

/// By-reference entry point, mirroring
/// `rayon::iter::IntoParallelRefIterator` (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send + 'a;
    /// Backing indexed source.
    type Source: IndexedSource<Item = Self::Item>;
    /// Parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Source = SliceSource<'a, T>;
    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Source = SliceSource<'a, T>;
    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        self.as_slice().par_iter()
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// A parallel iterator over an indexed source (execution happens at the
/// consuming operation).
pub struct ParIter<S> {
    source: S,
}

/// A mapped parallel iterator; execution happens at `collect`.
pub struct MapParIter<S, F> {
    source: S,
    f: F,
}

/// A mapped parallel iterator with per-worker state (`map_init`).
pub struct MapInitParIter<S, I, F> {
    source: S,
    init: I,
    f: F,
}

impl<S: IndexedSource> ParIter<S> {
    /// Maps every item; the closure runs on worker threads at collect
    /// time, so it must be `Sync` (shared) and side-effect free like any
    /// rayon closure.
    pub fn map<R, F>(self, f: F) -> MapParIter<S, F>
    where
        R: Send,
        F: Fn(S::Item) -> R + Sync,
    {
        MapParIter {
            source: self.source,
            f,
        }
    }

    /// Maps with per-worker state: `init` runs once on each worker thread
    /// and the resulting value is passed (mutably) to every call of `f`
    /// on that worker — rayon's `map_init`. The campaign engine uses it
    /// to reuse one `SimWorkspace` across the thousands of simulations a
    /// worker executes.
    pub fn map_init<W, R, I, F>(self, init: I, f: F) -> MapInitParIter<S, I, F>
    where
        R: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, S::Item) -> R + Sync,
    {
        MapInitParIter {
            source: self.source,
            init,
            f,
        }
    }
}

impl<S, R, F> MapParIter<S, F>
where
    S: IndexedSource,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    /// Runs the map in parallel and gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        run_parallel(self.source, &|| (), &|_: &mut (), item| f(item))
            .into_iter()
            .collect()
    }
}

impl<S, W, R, I, F> MapInitParIter<S, I, F>
where
    S: IndexedSource,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, S::Item) -> R + Sync,
{
    /// Runs the map in parallel (one `init` per worker) and gathers
    /// results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_parallel(self.source, &self.init, &self.f)
            .into_iter()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Execution engine: guided atomic-index work queue
// ---------------------------------------------------------------------------

/// Pads (and aligns) a value to two 64-byte cache lines so the wrapped
/// atomic owns its lines outright. The claim counter used to sit at the
/// front of the `WorkQueue` struct, on the same line as the (read-only)
/// `len`/`workers` fields *and* whatever the scoped-spawn machinery
/// placed next to it on the stack — every claim's `fetch_add` then
/// ping-ponged that line across all workers' caches even though the
/// neighbouring reads never changed. 128 bytes (not 64) because adjacent
/// cache-line prefetchers on x86 pull line pairs.
#[repr(align(128))]
struct CachePadded<T>(T);

/// Output buffer shared by workers; results land at their input index.
struct OutputBuf<R> {
    buf: *mut MaybeUninit<R>,
}

// SAFETY: workers write disjoint indices (claimed from the atomic queue).
unsafe impl<R: Send> Sync for OutputBuf<R> {}

/// Shared claim counter. Chunks shrink as the queue drains (guided
/// scheduling): big grains early amortize the atomic op, single items at
/// the tail keep every worker busy until the end.
///
/// The grain schedule is self-tuning: each claim takes
/// `remaining / (workers * 4)` items, decaying geometrically toward
/// `min_grain`. `min_grain` is derived from the queue's shape at
/// construction — for heavy items (a campaign's per-tree simulations,
/// few items per worker) it stays 1 so the tail balances perfectly; for
/// cheap items (element-wise maps over 10^5..10^6 indices) it grows so
/// the atomic claim cost is amortized over tens of items instead of
/// being paid per item.
struct WorkQueue {
    next: CachePadded<AtomicUsize>,
    len: usize,
    workers: usize,
    min_grain: usize,
}

/// Upper bound on any single claim: keeps the tail imbalance bounded
/// even for million-item queues (a worker never sits on more than this
/// many items while others starve).
const MAX_GRAIN: usize = 4096;

impl WorkQueue {
    fn new(len: usize, workers: usize) -> Self {
        // Self-tuning minimum grain: aim for at least ~256 claims per
        // worker before hitting the floor, capped at 64 items so the
        // guided decay always ends in fine-grained tail balancing.
        let min_grain = (len / (workers * 256).max(1)).clamp(1, 64);
        WorkQueue {
            next: CachePadded(AtomicUsize::new(0)),
            len,
            workers,
            min_grain,
        }
    }

    /// Claims the next chunk, `[start, end)`, or `None` when drained.
    fn claim(&self) -> Option<(usize, usize)> {
        // A relaxed pre-read keeps the grain calculation cheap; the
        // fetch_add below is the only synchronizing claim.
        let remaining = self.len.saturating_sub(self.next.0.load(Ordering::Relaxed));
        let grain = (remaining / (self.workers * 4))
            .clamp(self.min_grain, MAX_GRAIN)
            .max(1);
        let start = self.next.0.fetch_add(grain, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some((start, (start + grain).min(self.len)))
    }
}

fn run_parallel<S, W, R, I, F>(source: S, init: &I, f: &F) -> Vec<R>
where
    S: IndexedSource,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, S::Item) -> R + Sync,
{
    let n = source.len();
    let workers = current_num_threads().min(n).max(1);
    source.begin_consume();

    if workers <= 1 {
        let mut w = init();
        // SAFETY: begin_consume ran; each index taken exactly once, in
        // order. (A panic in `f` leaks the untaken tail — safe.)
        return (0..n)
            .map(|i| f(&mut w, unsafe { source.take(i) }))
            .collect();
    }

    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization; every cell is written
    // exactly once before the final transmute-by-parts below.
    unsafe { out.set_len(n) };
    let out_buf = OutputBuf {
        buf: out.as_mut_ptr(),
    };
    let queue = WorkQueue::new(n, workers);
    let source_ref = &source;
    let out_ref = &out_buf;
    let queue_ref = &queue;

    let worker_panic = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut w = init();
                    while let Some((start, end)) = queue_ref.claim() {
                        for i in start..end {
                            // SAFETY: the queue hands out each index to
                            // exactly one worker; output writes are to
                            // disjoint cells.
                            unsafe {
                                let item = source_ref.take(i);
                                (*out_ref.buf.add(i)).write(f(&mut w, item));
                            }
                        }
                    }
                })
            })
            .collect();
        let mut panic_payload = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic_payload = Some(payload);
            }
        }
        panic_payload
    });
    if let Some(payload) = worker_panic {
        // Which output cells were written is unknowable after a panic:
        // leak the buffer (safe) and propagate. The source leaks its
        // untaken items the same way (begin_consume already ran).
        std::mem::forget(out);
        std::panic::resume_unwind(payload);
    }
    drop(source);
    // SAFETY: all n cells were written exactly once (the queue covers
    // [0, n) without overlap and every worker completed).
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity())
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_vec_input() {
        let v = vec!["a", "bb", "ccc"];
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn moves_owned_items_exactly_once() {
        // Drop-counting payloads: every item must be dropped exactly once
        // (by the map closure taking ownership), never twice.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let v: Vec<D> = (0..500).map(D).collect();
        let out: Vec<u64> = v.into_par_iter().map(|d| d.0).collect();
        assert_eq!(out.len(), 500);
        assert_eq!(DROPS.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn par_iter_borrows_in_order() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, v.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn range_is_not_materialized() {
        // A huge range must be fine to build (items are arithmetic); only
        // the collected output allocates.
        let it = (0..u64::MAX >> 1).into_par_iter();
        assert_eq!(it.source.len(), (u64::MAX >> 1) as usize);
        let out: Vec<u64> = (10..20u64).into_par_iter().map(|i| i).collect();
        assert_eq!(out, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_worker_state() {
        // Each worker's state observes a strictly increasing call count;
        // totals across items must cover every input exactly once.
        let out: Vec<(usize, usize)> = (0..256usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    (i, *calls)
                },
            )
            .collect();
        assert_eq!(out.len(), 256);
        // Input order preserved.
        assert!(out.iter().enumerate().all(|(k, &(i, _))| k == i));
        // Every worker-local counter starts at 1 and increments.
        assert!(out.iter().all(|&(_, c)| c >= 1));
    }

    #[test]
    fn actually_runs_closures_from_multiple_threads_or_one() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn thread_override_is_respected_and_output_stable() {
        let base: Vec<u64> = (0..777u64).into_par_iter().map(|i| i * i).collect();
        for n in [1usize, 2, 4, 7] {
            ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .unwrap();
            assert!(current_num_threads() == n);
            let out: Vec<u64> = (0..777u64).into_par_iter().map(|i| i * i).collect();
            assert_eq!(out, base, "thread count {n} changed results");
        }
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn work_queue_claims_cover_exactly_once() {
        for (len, workers) in [(0usize, 1usize), (1, 4), (64, 4), (1000, 7), (250_000, 4)] {
            let q = WorkQueue::new(len, workers);
            let mut covered = 0;
            let mut last_end = 0;
            while let Some((s, e)) = q.claim() {
                assert_eq!(s, last_end, "gap or overlap at {s} (len {len})");
                assert!(e > s && e <= len);
                covered += e - s;
                last_end = e;
            }
            assert_eq!(covered, len, "queue did not cover [0, {len})");
        }
    }

    #[test]
    fn grain_self_tunes_to_queue_shape() {
        // Few heavy items per worker (a 64-tree campaign): the floor
        // stays 1 so the tail balances item by item.
        assert_eq!(WorkQueue::new(64, 4).min_grain, 1);
        // Millions of cheap items: the floor grows (capped at 64) so the
        // atomic claim is amortized.
        assert_eq!(WorkQueue::new(1_000_000, 4).min_grain, 64);
        // Guided decay: claims shrink as the queue drains, never exceed
        // MAX_GRAIN, and end at the floor.
        let q = WorkQueue::new(400_000, 4);
        let mut prev = usize::MAX;
        let mut sizes = Vec::new();
        while let Some((s, e)) = q.claim() {
            let g = e - s;
            assert!(g <= MAX_GRAIN);
            assert!(g <= prev || g >= q.min_grain);
            prev = g;
            sizes.push(g);
        }
        assert!(sizes.first().copied().unwrap() > sizes.last().copied().unwrap());
        // The tail runs at the floor (the very last claim may be the
        // sub-floor remainder of the queue).
        assert!(sizes.last().copied().unwrap() <= q.min_grain);
        assert!(sizes.iter().rev().nth(1).copied().unwrap_or(1) <= q.min_grain.max(1));
    }

    #[test]
    fn straggler_items_do_not_serialize_the_tail() {
        // One item 100× heavier than the rest: with dynamic claiming the
        // other workers keep draining the queue. This is a semantic test
        // (completes + correct), not a timing assertion — single-core CI
        // boxes can't observe overlap.
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let out: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|i| {
                let spins = if i == 0 { 2_000_000 } else { 20_000 };
                let mut acc = i;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
