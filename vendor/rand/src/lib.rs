//! Offline shim of the `rand 0.9` API surface used by this workspace.
//!
//! The build container has no network access and no cached registry, so
//! the real crate cannot be fetched; this shim re-implements exactly the
//! pieces the workspace calls (`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random`, `Rng::random_range`, `SliceRandom::shuffle`) with the
//! same algorithms rand 0.9 uses on 64-bit targets — Xoshiro256++ seeded
//! via SplitMix64, Lemire widening-multiply range sampling, and the
//! rand-style Fisher–Yates shuffle — so seeded streams stay deterministic
//! and statistically sound.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`,
    /// matching rand's xoshiro wrappers).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64`, stretching it with
    /// SplitMix64 exactly as `rand_xoshiro` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Value types samplable uniformly from the full bit pattern
/// (`rng.random()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `rng.random_range(..)`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire's widening-multiply method over a `u64` span (`span == 0` means
/// the full 2^64 range). This is the unbiased rejection sampler rand 0.9
/// uses for integer ranges.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(sample_span(rng, span) as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1) as u64;
                (lo as $u).wrapping_add(sample_span(rng, span) as $u) as $t
            }
        }
    )*};
}

impl_sample_range!(u64 => u64, u32 => u32, usize => usize, i64 => u64, i32 => u32);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Xoshiro256++ — the algorithm behind `rand 0.9`'s `SmallRng` on
    /// 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Construct from a raw xoshiro state (reference-vector tests).
        #[cfg(test)]
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64, the xoshiro authors' recommended seeder (and
            // what rand_xoshiro ships).
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-[1,2,3,4] state, per
        // the reference implementation.
        let mut rng = SmallRng::from_state([1, 2, 3, 4]);
        assert_eq!(rng.random::<u64>(), 41943041);
        assert_eq!(rng.random::<u64>(), 58720359);
        assert_eq!(rng.random::<u64>(), 3588806011781223);
    }

    #[test]
    fn seeding_is_deterministic_and_decorrelated() {
        let a: u64 = SmallRng::seed_from_u64(7).random();
        let b: u64 = SmallRng::seed_from_u64(7).random();
        let c: u64 = SmallRng::seed_from_u64(8).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
