//! Offline shim of the Criterion benchmarking API used by this workspace.
//!
//! Implements the measurement loop (warmup, auto-scaled batching, median
//! of timed samples) and the `criterion_group!`/`criterion_main!` macros.
//! Honors the harness flags cargo passes through: `--test` runs each
//! benchmark body once as a smoke test, name arguments filter which
//! benchmarks run. Statistical machinery (outlier classification, HTML
//! reports) is intentionally absent.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark runner: holds configuration and the CLI filter.
pub struct Criterion {
    sample_size: usize,
    /// When set, run each body exactly once and report `ok` (the
    /// `cargo bench -- --test` smoke mode).
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--test`, `--bench`, name filters).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "-v" => {}
                s if s.starts_with("--") => {}
                s => self.filters.push(s.to_string()),
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.matches(id) {
            run_one(id, self.sample_size, self.test_mode, &mut f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix (`group/bench`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(
                &full,
                self.effective_sample_size(),
                self.criterion.test_mode,
                &mut f,
            );
        }
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(
                &full,
                self.effective_sample_size(),
                self.criterion.test_mode,
                &mut |b| f(b, input),
            );
        }
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    mode: BenchMode,
    /// Median nanoseconds per iteration, recorded by `iter`.
    result_ns: f64,
}

enum BenchMode {
    /// Run the body once, don't time (smoke test).
    Test,
    /// Time `samples` batches.
    Measure { samples: usize },
}

impl Bencher {
    /// Measures a workload: warm up, pick a batch size targeting ~5 ms
    /// per sample, then time `sample_size` batches and keep the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Test => {
                std::hint::black_box(routine());
            }
            BenchMode::Measure { samples } => {
                // Warmup + batch-size calibration: run until 50 ms or
                // 10k iterations, whichever comes first.
                let warmup_start = Instant::now();
                let mut warmup_iters: u64 = 0;
                while warmup_start.elapsed() < Duration::from_millis(50) && warmup_iters < 10_000 {
                    std::hint::black_box(routine());
                    warmup_iters += 1;
                }
                let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
                let batch = ((5_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 10_000);

                let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let t = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    sample_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
                }
                sample_ns.sort_by(|a, b| a.total_cmp(b));
                self.result_ns = sample_ns[sample_ns.len() / 2];
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(id: &str, samples: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mode = if test_mode {
        BenchMode::Test
    } else {
        BenchMode::Measure { samples }
    };
    let mut bencher = Bencher {
        mode,
        result_ns: f64::NAN,
    };
    f(&mut bencher);
    if test_mode {
        println!("Testing {id} ... ok");
    } else if bencher.result_ns.is_nan() {
        println!("{id}: no measurement (body never called iter)");
    } else {
        println!("{id}: time [{} / iter]", format_ns(bencher.result_ns));
    }
}

/// Defines a benchmark group function, with or without custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_workload() {
        let mut b = Bencher {
            mode: BenchMode::Measure { samples: 5 },
            result_ns: f64::NAN,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.result_ns.is_finite() && b.result_ns >= 0.0);
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut b = Bencher {
            mode: BenchMode::Test,
            result_ns: f64::NAN,
        };
        let mut count = 0;
        b.iter(|| {
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn group_ids_filter() {
        let c = Criterion {
            sample_size: 10,
            test_mode: false,
            filters: vec!["pivot".into()],
        };
        assert!(c.matches("lp_pivot/dense"));
        assert!(!c.matches("steady_rate"));
        let none = Criterion::default();
        assert!(none.matches("anything"));
    }
}
