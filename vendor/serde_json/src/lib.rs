//! Offline shim of the `serde_json` API surface used by this workspace:
//! compact `to_string` / `to_string_pretty` over the shim serde data
//! model, and a complete (small) JSON parser for `from_str`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error from [`from_str`]: either invalid JSON text or a shape mismatch
/// when converting into the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes any shim-`Serialize` type to compact JSON (same wire format
/// real serde_json emits for these types).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text and converts it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: floats always carry a decimal point.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |item, out, d| write_value(item, out, indent, d),
        ),
        Value::Object(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |(k, v), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out, depth + 1);
    }
    if let Some(w) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u surrogate".into()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error("empty string tail".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Null])),
            ("b".into(), Value::Str("x\"y\\z\n".into())),
            ("c".into(), Value::Bool(false)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn compact_output_shape() {
        let v = Value::Object(vec![
            ("parent".into(), Value::Null),
            ("n".into(), Value::Int(42)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"parent":null,"n":42}"#);
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Int(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(from_str::<Value>("-17").unwrap(), Value::Int(-17));
        assert_eq!(from_str::<Value>("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            from_str::<Value>(&u64::MAX.to_string()).unwrap(),
            Value::Int(u64::MAX as i128)
        );
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![3u64, 1, 4, 1, 5];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[3,1,4,1,5]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), xs);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("héllo ∑ \u{1F980}".into());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
