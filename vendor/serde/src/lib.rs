//! Offline shim of the serde data model used by this workspace.
//!
//! The real serde cannot be fetched (no network, no cached registry), and
//! its derive macros need a proc-macro crate. This shim replaces the
//! whole serializer/deserializer machinery with one in-memory [`Value`]
//! tree: types implement [`Serialize`]/[`Deserialize`] by converting to
//! and from `Value` (hand-written impls in place of `#[derive]`), and the
//! companion `serde_json` shim renders/parses `Value` as JSON text with
//! the same wire format real serde_json produces for these types.

use std::fmt;

/// A self-describing data value — the intersection of serde's data model
/// and JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers without a fraction/exponent (covers `u64` and
    /// `i64` losslessly).
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object, so serialization output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the data model (the shim's `serde::Serialize`).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from the data model (the shim's `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Helper for hand-written struct impls: collects named fields into an
/// ordered object.
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Helper for hand-written struct impls: fetches and converts one field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let f = v
        .get(name)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
    T::from_value(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            Option::<u32>::from_value(&Option::<u32>::None.to_value()),
            Ok(None)
        );
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()),
            Ok(Some(7))
        );
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u32::from_value(&Value::Int(u64::MAX as i128)).is_err());
    }

    #[test]
    fn object_helpers() {
        let v = object(vec![("a", 1u64.to_value()), ("b", Value::Null)]);
        assert_eq!(field::<u64>(&v, "a"), Ok(1));
        assert_eq!(field::<Option<u64>>(&v, "b"), Ok(None));
        assert!(field::<u64>(&v, "missing").is_err());
    }
}
