//! Offline shim of the proptest API surface used by this workspace.
//!
//! Provides the `proptest!` test macro, `Strategy` (ranges, tuples,
//! `any`, `Just`, `prop_map`, `prop::collection::vec`) and the
//! `prop_assert*` family. Sampling is random (seeded deterministically
//! per test from the test's module path) rather than shrink-guided:
//! failures panic with the standard assertion message instead of
//! reporting a minimized counterexample, which keeps the dependency
//! surface at zero while preserving the tests' checking power.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The sampling source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-test seeding: the same test name always replays
    /// the same case sequence.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.random()
    }

    fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform-enough value in `[0, span)`; `span == 0` means the full
    /// 128-bit range. (Modulo bias is ≤ 2^-64 for every span this
    /// workspace uses — irrelevant for property sampling.)
    fn below(&mut self, span: u128) -> u128 {
        let v = self.next_u128();
        if span == 0 {
            v
        } else {
            v % span
        }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    /// Draws one random value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add(rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                (lo as i128).wrapping_add(rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128/i128 ranges need the span computed in u128 directly.
impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i128> {
    type Value = i128;
    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over every value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// The `prop::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::prelude` equivalent: everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("property assertion failed: {}", format_args!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!("property assertion failed: {:?} != {:?}", __l, __r);
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!(
                        "property assertion failed: {:?} != {:?}: {}",
                        __l, __r, format_args!($($fmt)+)
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    panic!("property assertion failed: {:?} == {:?}", __l, __r);
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest!` test-definition macro: each `fn name(x in strategy)`
/// item becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),+ $(,)?
        ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let __body = move || { $body };
                    __body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 10u64..20, b in -5i64..=5, c in 0u128..1000) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!(c < 1000);
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((any::<u32>(), 1u64..50), 0..40)) {
            prop_assert!(v.len() < 40);
            for (_, x) in v {
                prop_assert!((1..50).contains(&x));
            }
        }

        #[test]
        fn map_and_just(x in (1u64..10).prop_map(|v| v * 2), y in Just(7u8)) {
            prop_assert!(x % 2 == 0 && x < 20);
            prop_assert_eq!(y, 7);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Doc comments on property functions must parse.
        #[test]
        fn config_is_honored(x in any::<bool>()) {
            prop_assert!(u8::from(x) <= 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn full_range_sampling_varies() {
        let mut rng = crate::TestRng::for_test("full");
        let strat = 0u128..u128::MAX;
        let a = crate::Strategy::sample(&strat, &mut rng);
        let b = crate::Strategy::sample(&strat, &mut rng);
        assert_ne!(a, b);
    }
}
